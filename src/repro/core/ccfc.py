"""The CCFC attack — CDN Compression Format Conversion (arXiv 2409.00712).

The attacker hosts a tiny, highly compressible resource behind a CDN and
requests it with ``Accept-Encoding: identity``.  A vendor that *rewrites*
the header to its own ``br``/``gzip`` preference fetches the compressed
variant from the origin (kilobytes), then — because the client declared
it cannot accept that coding — decompresses at the edge and ships the
inflated identity representation (megabytes).  The origin-side cost the
attacker pays is the compressed size; the CDN's egress is the full size:
the same per-vendor-behavior-table amplification shape as RangeAmp, one
header dimension over.

Two objects live here:

* :class:`CcfcAttack.run` — the wire-level simulation through a real
  :class:`~repro.core.deployment.Deployment` (fresh caches, ledger).
* :class:`CcfcAttack.mirror` — a closed-form replay that reuses the
  byte-defining code paths (the profile's own fetch flow, a real
  :class:`~repro.origin.server.OriginServer`, the node module's
  conversion/finalize helpers) so its result equals ``run()``'s **by
  construction**.  The static CCFC bound and the fast-path grid engine
  are both built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Tuple

from repro.cdn.node import convert_encoded_response, finalize_client_response
from repro.cdn.vendors import create_profile
from repro.cdn.vendors.base import VendorConfig, VendorContext, VendorProfile
from repro.core.amplification import AmplificationReport
from repro.core.cachebusting import CacheBuster
from repro.core.deployment import CdnSpec, Deployment
from repro.errors import ConfigurationError
from repro.http.encoding import IDENTITY, accepts_encoding
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.overhead import NullOverheadModel, OverheadModel
from repro.netsim.tap import CDN_ORIGIN, CLIENT_CDN, SegmentStats
from repro.obs.tracer import current_tracer
from repro.origin.resource import Resource
from repro.origin.server import OriginServer

if TYPE_CHECKING:
    from repro.runner.grid import ExperimentGrid

MB = 1 << 20

#: Content codings the attacker's origin pre-compresses, ordered by how
#: hard they shrink (br beats gzip on the attack payload).
ATTACK_ENCODINGS: Tuple[str, ...] = ("br", "gzip")

#: The Accept-Encoding the CCFC attacker declares: identity-only, so a
#: rewriting CDN that fetched br/gzip must inflate at the edge.
CLIENT_ACCEPT_ENCODING = IDENTITY


def default_attack_encodings(profile: VendorProfile, resource_size: int) -> Dict[str, int]:
    """The pre-compressed variants the attacker's origin hosts, sized by
    the profile's per-format compression ratios."""
    return {
        coding: profile.compressed_size(coding, resource_size)
        for coding in ATTACK_ENCODINGS
    }


def negotiated_encoding(
    profile: VendorProfile,
    encodings: Mapping[str, int],
    client_accept: str = CLIENT_ACCEPT_ENCODING,
) -> Optional[str]:
    """The coding the origin picks for one attack request, or ``None``.

    Mirrors the origin's smallest-acceptable-variant negotiation as seen
    through the profile's upstream ``Accept-Encoding`` rewrite: a
    stripped header (``None`` upstream) or one that only accepts
    identity yields no non-identity variant.
    """
    upstream = profile.upstream_accept_encoding(client_accept)
    if upstream is None:
        return None
    candidates = [
        (size, coding)
        for coding, size in encodings.items()
        if coding.lower() != IDENTITY and accepts_encoding(upstream, coding)
    ]
    if not candidates:
        return None
    return min(candidates)[1]


@dataclass(frozen=True)
class CcfcResult:
    """Outcome of one CCFC measurement."""

    vendor: str
    resource_size: int
    rounds: int
    #: Coding the origin served (``None`` when negotiation fell back to
    #: the identity representation — the safe vendors).
    encoding: Optional[str]
    #: Response traffic the CDN pushed to the client on client-cdn (bytes).
    client_traffic: int
    #: Response traffic the origin pushed on cdn-origin (bytes).
    origin_traffic: int
    #: HTTP statuses of the client-side responses.
    statuses: Tuple[int, ...]
    report: AmplificationReport

    @property
    def amplification(self) -> float:
        return self.report.factor


class CcfcAttack:
    """Run the CCFC attack against one vendor profile.

    Unlike SBR, the victim segment is **client-cdn**: the CDN's egress
    (its bandwidth bill, or the link to a spoofed victim) carries the
    inflated bodies, while the attacker pays only the compressed
    cdn-origin traffic.

    ``profile_factory`` substitutes a wrapped profile (e.g. a
    ``MitigatedProfile``) for the registry vendor — the recommendation
    engine's before/after measurement.  ``encodings`` overrides the
    origin's pre-compressed variant table (coding → compressed bytes);
    by default it is derived from the profile's compression ratios.
    """

    def __init__(
        self,
        vendor: str,
        resource_size: int = 10 * MB,
        resource_path: str = "/target.bin",
        config: Optional[VendorConfig] = None,
        overhead: Optional[OverheadModel] = None,
        host: str = "victim.example",
        profile_factory: Optional[Callable[[], "VendorProfile"]] = None,
        encodings: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.vendor = vendor
        self.resource_size = resource_size
        self.resource_path = resource_path
        self.config = config
        self.overhead = overhead
        self.host = host
        self.profile_factory = profile_factory
        self.encodings = dict(encodings) if encodings is not None else None

    def _build_profile(self) -> VendorProfile:
        if self.profile_factory is not None:
            return self.profile_factory()
        return create_profile(self.vendor)

    def _resource_encodings(self, profile: VendorProfile) -> Dict[str, int]:
        if self.encodings is not None:
            return dict(self.encodings)
        return default_attack_encodings(profile, self.resource_size)

    def _build_request(self, target: str) -> HttpRequest:
        """The attack request, built exactly like ``Client.get`` does."""
        headers = Headers([("Host", self.host)])
        headers.add("Accept-Encoding", CLIENT_ACCEPT_ENCODING)
        return HttpRequest(method="GET", target=target, headers=headers)

    def build_deployment(self) -> Deployment:
        profile = self._build_profile()
        origin = OriginServer()
        origin.add_resource(
            Resource(
                path=self.resource_path,
                body=self.resource_size,
                encodings=self._resource_encodings(profile),
            )
        )
        spec = CdnSpec(profile=profile, config=self.config)
        return Deployment.single(spec, origin, overhead=self.overhead)

    def run(self, rounds: int = 1) -> CcfcResult:
        """Execute ``rounds`` attack rounds and measure amplification.

        One round sends a single identity-only GET at a cache-busted URL.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        deployment = self.build_deployment()
        profile = deployment.front.profile
        resource = deployment.origin.store.get(self.resource_path)
        encoding = negotiated_encoding(profile, resource.encodings or {})
        client = deployment.client(host=self.host)
        buster = CacheBuster()
        statuses: List[int] = []
        with current_tracer().span("attack.ccfc") as span:
            if span.recording:
                span.set(
                    vendor=self.vendor,
                    resource_size=self.resource_size,
                    rounds=rounds,
                    encoding=encoding or IDENTITY,
                )
            for _ in range(rounds):
                target = buster.bust(self.resource_path)
                result = client.get(
                    target,
                    extra_headers=[("Accept-Encoding", CLIENT_ACCEPT_ENCODING)],
                )
                statuses.append(result.response.status)
            report = AmplificationReport.from_ledger(
                deployment.ledger,
                victim_segment=CLIENT_CDN,
                attacker_segment=CDN_ORIGIN,
            )
            if span.recording:
                span.set(amplification=report.factor)
        return CcfcResult(
            vendor=self.vendor,
            resource_size=self.resource_size,
            rounds=rounds,
            encoding=encoding,
            client_traffic=report.victim_bytes,
            origin_traffic=report.attacker_bytes,
            statuses=tuple(statuses),
            report=report,
        )

    def mirror(self, rounds: int = 1) -> CcfcResult:
        """Closed-form replay of :meth:`run` without a deployment.

        Every byte-defining step goes through the same code the live
        pipeline runs — the profile's ``fetch`` flow against a real
        origin, :func:`~repro.cdn.node.convert_encoded_response`, and
        :func:`~repro.cdn.node.finalize_client_response` — but bodies
        stay synthetic and no ledger objects are built, so the cost is
        O(rounds) in message-header work regardless of resource size.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        profile = self._build_profile()
        config = self.config if self.config is not None else profile.effective_config()
        overhead = self.overhead if self.overhead is not None else NullOverheadModel()
        encodings = self._resource_encodings(profile)
        origin = OriginServer()
        resource = origin.add_resource(
            Resource(path=self.resource_path, body=self.resource_size, encodings=encodings)
        )
        buster = CacheBuster()
        setup = overhead.connection_setup_bytes()

        client_connections = 0
        client_request_bytes = 0
        client_sent = 0
        upstream_connections = 0
        upstream_request_bytes = 0
        upstream_sent = 0
        upstream_delivered = 0
        statuses: List[int] = []

        def exchange(
            upstream_request: HttpRequest,
            payload_cap: Optional[int] = None,
            note: str = "",
        ) -> HttpResponse:
            # One fresh upstream connection per exchange, accounted the
            # way Connection.exchange + CdnNode._exchange_once do.
            nonlocal upstream_connections, upstream_request_bytes
            nonlocal upstream_sent, upstream_delivered
            response = origin.handle(upstream_request)
            upstream_connections += 1
            upstream_request_bytes += overhead.framed_size(upstream_request.wire_size())
            sent = overhead.framed_size(response.wire_size()) + setup
            if payload_cap is None:
                delivered = sent
            else:
                cap = response.header_block_size() + max(0, payload_cap)
                delivered = min(sent, max(0, cap))
            upstream_sent += sent
            upstream_delivered += delivered
            if delivered < sent:
                received = response.copy()
                received.body = response.body.slice(
                    0, max(0, delivered - response.header_block_size())
                )
                return received
            return response

        for _ in range(rounds):
            target = buster.bust(self.resource_path)
            request = self._build_request(target)
            ctx = VendorContext(config=config, resource_size_hint=resource.size)
            result = profile.fetch(request, None, ctx, exchange)
            if result.passthrough is None:
                raise ConfigurationError(
                    "CCFC mirror models the lazy passthrough fetch flow only; "
                    f"profile {profile.name!r} returned a content window"
                )
            passthrough = convert_encoded_response(
                profile,
                result.passthrough,
                resource.size,
                request.headers.get("Accept-Encoding"),
            )
            if int(passthrough.status) >= 300:
                response = passthrough.copy()
                response.headers.set("Server", profile.server_header)
            else:
                response = finalize_client_response(profile, passthrough.copy())
            statuses.append(response.status)
            client_connections += 1
            client_request_bytes += overhead.framed_size(request.wire_size())
            client_sent += overhead.framed_size(response.wire_size()) + setup

        segments: Dict[str, SegmentStats] = {
            CLIENT_CDN: SegmentStats(
                segment=CLIENT_CDN,
                connection_count=client_connections,
                exchange_count=client_connections,
                request_bytes=client_request_bytes,
                response_bytes_sent=client_sent,
                response_bytes_delivered=client_sent,
            )
        }
        if upstream_connections:
            segments[CDN_ORIGIN] = SegmentStats(
                segment=CDN_ORIGIN,
                connection_count=upstream_connections,
                exchange_count=upstream_connections,
                request_bytes=upstream_request_bytes,
                response_bytes_sent=upstream_sent,
                response_bytes_delivered=upstream_delivered,
            )
        report = AmplificationReport(
            attacker_bytes=upstream_delivered if upstream_connections else 0,
            victim_bytes=client_sent,
            attacker_segment=CDN_ORIGIN,
            victim_segment=CLIENT_CDN,
            segments=segments,
        )
        return CcfcResult(
            vendor=self.vendor,
            resource_size=self.resource_size,
            rounds=rounds,
            encoding=negotiated_encoding(profile, encodings),
            client_traffic=report.victim_bytes,
            origin_traffic=report.attacker_bytes,
            statuses=tuple(statuses),
            report=report,
        )


def sweep_resource_sizes(
    vendor: str,
    sizes: List[int],
    config: Optional[VendorConfig] = None,
) -> List[CcfcResult]:
    """Measure the CCFC factor for each resource size."""
    return [
        CcfcAttack(vendor, resource_size=size, config=config).run() for size in sizes
    ]


def ccfc_grid(
    vendors: Optional[List[str]] = None,
    sizes: Tuple[int, ...] = (1 * MB, 10 * MB),
    name: str = "ccfc",
) -> "ExperimentGrid":
    """The vendor x size CCFC sweep as an experiment grid."""
    from repro.cdn.vendors import all_vendor_names
    from repro.runner.experiments import ccfc_cell
    from repro.runner.grid import ExperimentGrid

    names = list(vendors) if vendors is not None else all_vendor_names()
    return ExperimentGrid(
        name, [ccfc_cell(vendor, size) for vendor in names for size in sizes]
    )


__all__ = [
    "ATTACK_ENCODINGS",
    "CLIENT_ACCEPT_ENCODING",
    "CcfcAttack",
    "CcfcResult",
    "ccfc_grid",
    "default_attack_encodings",
    "negotiated_encoding",
    "sweep_resource_sizes",
]
