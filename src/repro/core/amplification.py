"""Amplification-factor accounting.

The paper's metric is the ratio of response traffic on the victim-side
segment to response traffic on the attacker-side segment:

* SBR — ``cdn-origin`` response bytes ÷ ``client-cdn`` response bytes
  (the origin's outgoing bandwidth is the victim);
* OBR — ``fcdn-bcdn`` response bytes ÷ ``bcdn-origin`` response bytes
  (the inter-CDN link is the victim; the origin-side traffic is the
  attack's only "cost" at the back end).

Delivered bytes are used throughout: a connection the receiver cut
early (Azure's 8 MB abort, the OBR client abort) only moved what was
delivered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.netsim.tap import SegmentStats, TrafficLedger
from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer


@dataclass(frozen=True)
class AmplificationReport:
    """Traffic and amplification for one attack run."""

    #: Response traffic on the segment the attacker pays for (bytes).
    attacker_bytes: int
    #: Response traffic on the victim segment (bytes).
    victim_bytes: int
    #: Name of the segment ``attacker_bytes`` was measured on.
    attacker_segment: str
    #: Name of the segment ``victim_bytes`` was measured on.
    victim_segment: str
    #: Full per-segment statistics for the run.
    segments: Mapping[str, SegmentStats]

    @property
    def factor(self) -> float:
        """Victim-to-attacker response traffic ratio (0 when nothing was
        received attacker-side, mirroring a division guard, not RFC
        semantics)."""
        if self.attacker_bytes <= 0:
            return 0.0
        return self.victim_bytes / self.attacker_bytes

    @classmethod
    def from_ledger(
        cls,
        ledger: TrafficLedger,
        victim_segment: str,
        attacker_segment: str,
    ) -> "AmplificationReport":
        segments: Dict[str, SegmentStats] = ledger.all_stats()
        attacker = segments.get(attacker_segment)
        victim = segments.get(victim_segment)
        report = cls(
            attacker_bytes=attacker.response_bytes_delivered if attacker else 0,
            victim_bytes=victim.response_bytes_delivered if victim else 0,
            attacker_segment=attacker_segment,
            victim_segment=victim_segment,
            segments=segments,
        )
        # Every attack run funnels through here, so this is the one spot
        # where an active tracer captures the run's full exchange stream
        # and an active registry records the amplification distribution.
        tracer = current_tracer()
        if tracer.enabled:
            tracer.record_ledger(ledger)
        registry = current_metrics()
        if registry is not None:
            registry.record_amplification(report.factor, victim_segment)
        return report

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.victim_segment}: {self.victim_bytes} B vs "
            f"{self.attacker_segment}: {self.attacker_bytes} B "
            f"-> amplification {self.factor:.2f}x"
        )
