"""The ``run-all --profile`` report: where did the time and bytes go?

A profile is built from three ingredients the runner already has:

* one :class:`CellProfile` per executed grid cell (every cell appears,
  including failed ones),
* per-experiment :class:`~repro.runner.executor.CellTiming` aggregates
  (total/max/mean, failed-cell time),
* optionally, a metrics snapshot whose ``repro_segment_*`` counters
  give the per-segment byte rollup.

:func:`render_profile` turns them into a plain-text artifact that CI
uploads per PR, so a perf regression shows up as a diff in the slowest
cells table rather than as a vague "run-all got slower".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class CellProfile:
    """One grid cell's identity and cost, flattened for reporting."""

    experiment: str
    label: str
    ok: bool
    duration_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "label": self.label,
            "ok": self.ok,
            "duration_s": self.duration_s,
        }


def _fmt_seconds(seconds: float) -> str:
    return f"{seconds:9.3f}s"


def _fmt_bytes(count: float) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:8.1f} {unit}" if unit != "B" else f"{int(value):8d} B"
        value /= 1024.0
    return f"{value:8.1f} GiB"


def _segment_bytes(snapshot: Mapping[str, Any]) -> Dict[str, Dict[str, float]]:
    """Pull the per-segment byte counters out of a metrics snapshot."""
    columns = {
        "repro_segment_request_bytes_total": "request",
        "repro_segment_response_bytes_sent_total": "sent",
        "repro_segment_response_bytes_delivered_total": "delivered",
    }
    table: Dict[str, Dict[str, float]] = {}
    for metric, column in columns.items():
        entry = snapshot.get(metric)
        if not entry:
            continue
        for sample in entry.get("samples", ()):
            segment = sample.get("labels", {}).get("segment", "?")
            table.setdefault(segment, {})[column] = sample["value"]
    return table


def render_profile(
    cells: Sequence[CellProfile],
    timings: Mapping[str, Any],
    total_s: float,
    workers: int = 1,
    metrics_snapshot: Optional[Mapping[str, Any]] = None,
    slowest: int = 10,
) -> str:
    """Render the plain-text profile report.

    ``timings`` maps experiment name to a
    :class:`~repro.runner.executor.CellTiming`; ``cells`` must contain
    **every** executed cell (the acceptance bar for ``--profile``).
    """
    lines: List[str] = []
    lines.append("run-all profile")
    lines.append("=" * 60)
    cell_total = sum(cell.duration_s for cell in cells)
    failed = [cell for cell in cells if not cell.ok]
    lines.append(
        f"wall {total_s:.3f}s | workers {workers} | "
        f"cell-seconds {cell_total:.3f}s | cells {len(cells)} "
        f"({len(failed)} failed)"
    )

    lines.append("")
    lines.append("per-experiment timing")
    lines.append("-" * 60)
    header = (
        f"{'experiment':<22} {'cells':>5} {'fail':>4} "
        f"{'total':>10} {'max':>10} {'mean':>10} {'failed-s':>10}"
    )
    lines.append(header)
    for name in sorted(timings):
        timing = timings[name]
        lines.append(
            f"{name:<22} {timing.count:>5} {timing.failed_count:>4} "
            f"{_fmt_seconds(timing.total_s)} {_fmt_seconds(timing.max_s)} "
            f"{_fmt_seconds(timing.mean_s)} {_fmt_seconds(timing.failed_s)}"
        )

    if slowest > 0 and cells:
        lines.append("")
        lines.append(f"slowest {min(slowest, len(cells))} cells")
        lines.append("-" * 60)
        ranked = sorted(cells, key=lambda cell: cell.duration_s, reverse=True)
        for cell in ranked[:slowest]:
            flag = "" if cell.ok else "  [FAILED]"
            lines.append(
                f"{_fmt_seconds(cell.duration_s)}  {cell.experiment}:{cell.label}{flag}"
            )

    if metrics_snapshot:
        table = _segment_bytes(metrics_snapshot)
        if table:
            lines.append("")
            lines.append("per-segment wire bytes (all runs)")
            lines.append("-" * 60)
            lines.append(
                f"{'segment':<16} {'request':>12} {'sent':>14} {'delivered':>14}"
            )
            for segment in sorted(table):
                row = table[segment]
                lines.append(
                    f"{segment:<16} {_fmt_bytes(row.get('request', 0)):>12} "
                    f"{_fmt_bytes(row.get('sent', 0)):>14} "
                    f"{_fmt_bytes(row.get('delivered', 0)):>14}"
                )

    lines.append("")
    lines.append("all cells (grid order)")
    lines.append("-" * 60)
    for cell in cells:
        status = "ok" if cell.ok else "FAILED"
        lines.append(
            f"{_fmt_seconds(cell.duration_s)}  {status:<6} "
            f"{cell.experiment}:{cell.label}"
        )
    return "\n".join(lines) + "\n"
