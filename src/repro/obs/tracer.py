"""Hop-level tracing for the request pipeline.

The paper's evidence is tcpdump captures at four observation points
(client–cdn, cdn–origin, fcdn–bcdn, bcdn–origin); the simulator's
equivalent is a **span tree** per exchange: the client request is the
root, each CDN hop's processing (cache lookup, Range rewrite under the
chosen policy, back-to-origin fetches — including vendor quirks like
Azure's dual connections — and multipart assembly) nests below it, and
the origin's handling is the innermost leaf.

Design constraints:

* **Zero overhead when disabled.**  The default tracer is the shared
  :data:`NULL_TRACER` singleton; every operation on it returns shared
  singletons and allocates nothing, so the hot path pays one
  ``ContextVar`` read per instrumentation point and nothing else
  (``tests/obs/test_disabled.py`` pins this with a tracemalloc guard).
* **Deterministic ids.**  Trace and span ids are per-tracer counters
  (optionally prefixed, e.g. with the grid-cell index), so traces diff
  cleanly across runs and parallel execution cannot perturb them.
* **Picklable output.**  A finished span is a plain frozen dataclass
  (:class:`SpanRecord`) that crosses process boundaries, which is how
  the pool-backed :class:`~repro.runner.executor.GridRunner` ships
  per-cell traces back to the parent.

Span timestamps come from a :class:`~repro.netsim.clock.SimClock` (the
deterministic simulated time); real elapsed wall time is carried
separately as ``wall_ms`` and is observability-only, like
``CellOutcome.duration_s``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.netsim.clock import SimClock


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, flattened for export.

    ``start``/``end`` are simulated seconds (deterministic); ``wall_ms``
    is real elapsed wall time and is excluded from equality so traces of
    identical runs compare equal.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: float
    wall_ms: float = field(default=0.0, compare=False)
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "wall_ms": self.wall_ms,
            "attributes": self.attributes,
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "SpanRecord":
        payload = json.loads(line)
        known = {
            "trace_id", "span_id", "parent_id", "name", "start", "end",
            "wall_ms", "attributes",
        }
        return cls(**{k: v for k, v in payload.items() if k in known})


class Span:
    """A live span.  Use as a context manager::

        with tracer.span("cdn.handle") as span:
            if span.recording:
                span.set(vendor="akamai")
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "parent_id",
                 "attributes", "start", "_wall_start")

    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = {}
        self.start = tracer.clock.now
        self._wall_start = time.perf_counter()

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes (last write per key wins)."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self._tracer._end(self)


class NullSpan:
    """The disabled span: a shared, allocation-free no-op."""

    __slots__ = ()

    recording = False
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    name = ""
    attributes: Dict[str, Any] = {}

    def set(self, **attributes: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


#: The shared disabled span every :class:`NullTracer` operation returns.
NULL_SPAN = NullSpan()


class NullTracer:
    """Disabled tracing: every operation is a no-op returning shared
    singletons, so instrumented code paths allocate nothing."""

    __slots__ = ()

    enabled = False

    @property
    def current_span(self) -> NullSpan:
        return NULL_SPAN

    def span(self, name: str) -> NullSpan:
        return NULL_SPAN

    def record_ledger(self, ledger: Any) -> None:
        return None

    def finished_spans(self) -> Tuple[SpanRecord, ...]:
        return ()

    def events(self) -> Tuple[Any, ...]:
        return ()


#: The process-wide disabled tracer (the default).
NULL_TRACER = NullTracer()


class Tracer:
    """A recording tracer with a span stack for parent/child linkage.

    Spans nest lexically: :meth:`span` pushes onto the stack, exiting
    the ``with`` block pops and finalizes a :class:`SpanRecord`.  The
    tracer also collects per-exchange
    :class:`~repro.netsim.trace.TraceEvent` streams handed to it via
    :meth:`record_ledger`, so one tracer owns the full joined
    observability record of a run.
    """

    enabled = True

    def __init__(self, clock: Optional[SimClock] = None, id_prefix: str = "") -> None:
        self.clock = clock if clock is not None else SimClock()
        self.id_prefix = id_prefix
        self._stack: List[Span] = []
        self._finished: List[SpanRecord] = []
        self._events: List[Any] = []
        self._next_trace = 0
        self._next_span = 0

    # -- span lifecycle -----------------------------------------------------

    @property
    def current_span(self) -> Any:
        """The innermost open span, or :data:`NULL_SPAN` when idle."""
        return self._stack[-1] if self._stack else NULL_SPAN

    def span(self, name: str) -> Span:
        """Open a child of the current span (or a new root) and push it."""
        if self._stack:
            parent = self._stack[-1]
            trace_id = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            trace_id = f"{self.id_prefix}t{self._next_trace}"
            self._next_trace += 1
            parent_id = None
        span_id = f"{self.id_prefix}s{self._next_span}"
        self._next_span += 1
        span = Span(self, name, trace_id, span_id, parent_id)
        self._stack.append(span)
        return span

    def _end(self, span: Span) -> None:
        while self._stack and self._stack[-1] is not span:
            # A span leaked open below us (exception unwound past it);
            # close it implicitly so the record stream stays consistent.
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._finished.append(
            SpanRecord(
                trace_id=span.trace_id,
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                start=span.start,
                end=self.clock.now,
                wall_ms=(time.perf_counter() - span._wall_start) * 1e3,
                attributes=dict(span.attributes),
            )
        )

    # -- collected output ----------------------------------------------------

    def finished_spans(self) -> Tuple[SpanRecord, ...]:
        """Every closed span, in completion (child-before-parent) order."""
        return tuple(self._finished)

    def record_ledger(self, ledger: Any) -> None:
        """Flatten ``ledger`` into trace events and keep them.

        Called by :meth:`AmplificationReport.from_ledger
        <repro.core.amplification.AmplificationReport.from_ledger>` at
        the end of every attack run, so a traced run captures its full
        per-exchange stream alongside the spans.
        """
        from repro.netsim.trace import ledger_events

        self._events.extend(ledger_events(ledger))

    def events(self) -> Tuple[Any, ...]:
        """Every collected :class:`~repro.netsim.trace.TraceEvent`."""
        return tuple(self._events)


# ---------------------------------------------------------------------------
# Context propagation
# ---------------------------------------------------------------------------

_ACTIVE_TRACER: ContextVar[Any] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def current_tracer() -> Any:
    """The context's active tracer (:data:`NULL_TRACER` by default)."""
    return _ACTIVE_TRACER.get()


def current_span() -> Any:
    """The innermost open span of the active tracer."""
    return _ACTIVE_TRACER.get().current_span


@contextmanager
def use_tracer(tracer: Any) -> Iterator[Any]:
    """Install ``tracer`` as the context's active tracer."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)
