"""Process-local metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` owns named metric families; each family holds
one sample per label combination.  Snapshots are plain JSON-able dicts
(deterministically ordered) that can be merged across processes — the
pool-backed runner snapshots each worker cell's registry and folds the
snapshots into one parent registry — and rendered as Prometheus text
exposition format.

Like tracing, metrics default to **off**: :func:`current_metrics`
returns ``None`` unless a registry was installed with
:func:`use_metrics`, and every instrumentation site guards on that, so
the disabled hot path pays one ``ContextVar`` read and nothing else.

Canonical instrument names used by the pipeline instrumentation live
here (``repro_segment_*``, ``repro_cache_lookups_total``, ...) together
with ``record_*`` helpers so every call site emits consistent series.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError

LabelKey = Tuple[Tuple[str, str], ...]

#: Canonical metric names emitted by the pipeline instrumentation.
SEGMENT_EXCHANGES = "repro_segment_exchanges_total"
SEGMENT_REQUEST_BYTES = "repro_segment_request_bytes_total"
SEGMENT_RESPONSE_BYTES_SENT = "repro_segment_response_bytes_sent_total"
SEGMENT_RESPONSE_BYTES_DELIVERED = "repro_segment_response_bytes_delivered_total"
CACHE_LOOKUPS = "repro_cache_lookups_total"
MEMO_LOOKUPS = "repro_memo_lookups_total"
RANGE_REWRITES = "repro_range_rewrites_total"
AMPLIFICATION_FACTOR = "repro_amplification_factor"
RUNNER_CELL_SECONDS = "repro_runner_cell_seconds"
RUNNER_CELLS = "repro_runner_cells_total"
FAULTS_INJECTED = "repro_faults_injected_total"
FETCH_RETRIES = "repro_fetch_retries_total"
RETRY_BACKOFF_SECONDS = "repro_retry_backoff_seconds_total"
FETCH_ATTEMPTS = "repro_fetch_attempts"
RECOMMENDATIONS = "repro_recommendations_total"
RESIDUAL_FACTOR = "repro_residual_factor"
FASTPATH_CELLS = "repro_fastpath_cells_total"
SERVE_REQUESTS = "repro_serve_requests_total"
SERVE_LATENCY = "repro_serve_request_seconds"
SERVE_QUEUE_DEPTH = "repro_serve_queue_depth"
SERVE_INFLIGHT = "repro_serve_inflight"
SERVE_BREAKER_STATE = "repro_serve_breaker_state"
SERVE_MEMO_ENTRIES = "repro_serve_memo_entries"
SERVE_MEMO_EVICTIONS = "repro_serve_memo_evictions"
SERVE_MEMO_HIT_RATE = "repro_serve_memo_hit_rate"

#: Bucket bounds for the amplification-factor distribution (factors span
#: ~1 to ~45000 across the paper's tables; roughly log-spaced).
AMPLIFICATION_BUCKETS = (1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0,
                         10000.0, 50000.0)
#: Bucket bounds for residual (post-mitigation) worst-case factors —
#: recommendations live below ~10, so the low end is finely spaced.
RESIDUAL_FACTOR_BUCKETS = (1.0, 2.0, 3.0, 5.0, 10.0, 50.0, 100.0, 1000.0)
#: Bucket bounds for runner cell latency (seconds).
CELL_SECONDS_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0)
#: Bucket bounds for back-to-origin fetch attempt counts (the largest
#: vendor budget today is 4; headroom for custom policies).
FETCH_ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)
#: Bucket bounds for serve request latency (seconds): closed-form
#: answers land in the sub-millisecond buckets, exact simulations and
#: queue waits fill the tail.
SERVE_LATENCY_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                         1.0, 5.0, 30.0)
DEFAULT_BUCKETS = (0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)


class MetricError(ReproError):
    """Raised on metric misuse (type clash, bucket mismatch, ...)."""


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape per the exposition format: ``\\``, ``"``, and newlines."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escaping: only ``\\`` and newlines are special."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        '{}="{}"'.format(name, _escape_label_value(value)) for name, value in key
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value per label combination."""

    type_name = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def merge_samples(self, samples: Sequence[Dict[str, Any]]) -> None:
        for sample in samples:
            self.inc(sample["value"], **sample.get("labels", {}))

    def render(self) -> Iterator[str]:
        for key, value in sorted(self._values.items()):
            yield f"{self.name}{_render_labels(key)} {_format_value(value)}"


class Gauge:
    """A point-in-time value per label combination (last write wins)."""

    type_name = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def merge_samples(self, samples: Sequence[Dict[str, Any]]) -> None:
        for sample in samples:
            self.set(sample["value"], **sample.get("labels", {}))

    def render(self) -> Iterator[str]:
        for key, value in sorted(self._values.items()):
            yield f"{self.name}{_render_labels(key)} {_format_value(value)}"


class Histogram:
    """A cumulative-bucket histogram per label combination."""

    type_name = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(tuple(buckets)):
            raise MetricError(f"histogram {name} buckets must be sorted and unique")
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(buckets)
        # Per label key: (per-bucket counts + overflow, sum, count).
        self._series: Dict[LabelKey, List[Any]] = {}

    def _row(self, key: LabelKey) -> List[Any]:
        row = self._series.get(key)
        if row is None:
            row = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._series[key] = row
        return row

    def observe(self, value: float, **labels: Any) -> None:
        row = self._row(_label_key(labels))
        counts, _, _ = row
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[len(self.buckets)] += 1
        row[1] += value
        row[2] += 1

    def count(self, **labels: Any) -> int:
        row = self._series.get(_label_key(labels))
        return row[2] if row else 0

    def sum(self, **labels: Any) -> float:
        row = self._series.get(_label_key(labels))
        return row[1] if row else 0.0

    def samples(self) -> List[Dict[str, Any]]:
        return [
            {
                "labels": dict(key),
                "buckets": list(row[0]),
                "sum": row[1],
                "count": row[2],
            }
            for key, row in sorted(self._series.items())
        ]

    def merge_samples(self, samples: Sequence[Dict[str, Any]]) -> None:
        for sample in samples:
            incoming = list(sample["buckets"])
            if len(incoming) != len(self.buckets) + 1:
                raise MetricError(
                    f"histogram {self.name}: cannot merge a snapshot with "
                    f"{len(incoming)} buckets into {len(self.buckets) + 1}"
                )
            row = self._row(_label_key(sample.get("labels", {})))
            for index, count in enumerate(incoming):
                row[0][index] += count
            row[1] += sample["sum"]
            row[2] += sample["count"]

    def render(self) -> Iterator[str]:
        for key, row in sorted(self._series.items()):
            counts, total, count = row
            cumulative = 0
            for index, bound in enumerate(self.buckets):
                cumulative += counts[index]
                labels = key + (("le", _format_value(bound)),)
                yield f"{self.name}_bucket{_render_labels(labels)} {cumulative}"
            cumulative += counts[len(self.buckets)]
            labels = key + (("le", "+Inf"),)
            yield f"{self.name}_bucket{_render_labels(labels)} {cumulative}"
            yield f"{self.name}_sum{_render_labels(key)} {_format_value(total)}"
            yield f"{self.name}_count{_render_labels(key)} {count}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Creates, owns, and exports metric families by name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, factory: Any, name: str, help: str, **kwargs: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name, help, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, factory):
            raise MetricError(
                f"metric {name!r} already registered as {metric.type_name}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, help,
            buckets=tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
        )
        if buckets is not None and metric.buckets != tuple(buckets):
            # Same-length different-bounds merges used to corrupt the
            # distribution silently; any explicit bound disagreement is
            # misuse.  Omitting ``buckets`` fetches whatever exists.
            raise MetricError(
                f"histogram {name!r} already registered with buckets "
                f"{list(metric.buckets)}, got {list(buckets)}"
            )
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export / merge -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able, deterministically ordered dump of every family."""
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: Dict[str, Any] = {
                "type": metric.type_name,
                "help": metric.help,
                "samples": metric.samples(),
            }
            if isinstance(metric, Histogram):
                entry["bucket_bounds"] = list(metric.buckets)
            out[name] = entry
        return out

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the snapshot's value.
        This is how per-worker-cell registries roll up into the parent's.
        """
        for name, entry in snapshot.items():
            kind = entry.get("type")
            if kind == "counter":
                metric: Any = self.counter(name, entry.get("help", ""))
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""))
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    entry.get("help", ""),
                    buckets=tuple(entry.get("bucket_bounds", DEFAULT_BUCKETS)),
                )
            else:
                raise MetricError(f"snapshot entry {name!r} has unknown type {kind!r}")
            metric.merge_samples(entry.get("samples", ()))

    def to_prometheus(self) -> str:
        """Render every family in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.type_name}")
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    # -- canonical pipeline instruments -------------------------------------

    def record_exchange(self, segment: str, record: Any) -> None:
        """Count one :class:`~repro.netsim.connection.ExchangeRecord`."""
        self.counter(SEGMENT_EXCHANGES, "exchanges per segment").inc(
            1, segment=segment
        )
        self.counter(SEGMENT_REQUEST_BYTES, "request-direction wire bytes").inc(
            record.request_bytes, segment=segment
        )
        self.counter(
            SEGMENT_RESPONSE_BYTES_SENT, "response wire bytes pushed by the server"
        ).inc(record.response_bytes_sent, segment=segment)
        self.counter(
            SEGMENT_RESPONSE_BYTES_DELIVERED,
            "response wire bytes that reached the client side",
        ).inc(record.response_bytes_delivered, segment=segment)

    def record_cache_lookup(self, vendor: str, hit: bool) -> None:
        self.counter(CACHE_LOOKUPS, "edge cache lookups by outcome").inc(
            1, vendor=vendor, result="hit" if hit else "miss"
        )

    def record_memo_lookup(self, memo: str, hit: bool) -> None:
        """Count one runner memo-table lookup by outcome.

        Worker processes warm per-process memo tables whose stats used
        to vanish with the process; recording lookups here lets the
        runner's cross-process snapshot merge surface them.
        """
        self.counter(MEMO_LOOKUPS, "runner memo lookups by outcome").inc(
            1, memo=memo, result="hit" if hit else "miss"
        )

    def record_rewrite(self, vendor: str, policy: str) -> None:
        self.counter(
            RANGE_REWRITES, "Range-header forwarding decisions by policy"
        ).inc(1, vendor=vendor, policy=policy)

    def record_amplification(self, factor: float, victim_segment: str) -> None:
        self.histogram(
            AMPLIFICATION_FACTOR,
            "amplification factors of completed attack runs",
            buckets=AMPLIFICATION_BUCKETS,
        ).observe(factor, victim_segment=victim_segment)

    def record_fault(self, site: str, kind: str) -> None:
        self.counter(FAULTS_INJECTED, "injected faults by site and kind").inc(
            1, site=site, kind=kind
        )

    def record_retry(self, vendor: str, delay_s: float) -> None:
        self.counter(FETCH_RETRIES, "back-to-origin fetch retries").inc(
            1, vendor=vendor
        )
        self.counter(
            RETRY_BACKOFF_SECONDS, "simulated backoff accrued before retries"
        ).inc(delay_s, vendor=vendor)

    def record_fetch_attempts(self, vendor: str, attempts: int, ok: bool) -> None:
        self.histogram(
            FETCH_ATTEMPTS,
            "attempts per back-to-origin fetch",
            buckets=FETCH_ATTEMPT_BUCKETS,
        ).observe(attempts, vendor=vendor, outcome="ok" if ok else "exhausted")

    def record_recommendation(
        self, kind: str, mitigation: str, sufficient: bool, residual_factor: float
    ) -> None:
        """Count one defense recommendation and observe its residual."""
        self.counter(
            RECOMMENDATIONS, "defense recommendations by finding kind and outcome"
        ).inc(
            1,
            kind=kind,
            mitigation=mitigation,
            outcome="sufficient" if sufficient else "insufficient",
        )
        self.histogram(
            RESIDUAL_FACTOR,
            "residual worst-case factors under recommended mitigations",
            buckets=RESIDUAL_FACTOR_BUCKETS,
        ).observe(residual_factor, kind=kind, mitigation=mitigation)

    def record_fastpath_cells(self, outcome: str, count: int = 1) -> None:
        """Count fast-path planner decisions by outcome
        (``answered`` / ``refused`` / ``ineligible`` / ``validated``)."""
        self.counter(
            FASTPATH_CELLS, "fast-path planner cell decisions by outcome"
        ).inc(count, outcome=outcome)

    def record_serve_request(
        self, endpoint: str, outcome: str, seconds: float
    ) -> None:
        """Count one service request and observe its latency.

        ``outcome`` is ``ok``, ``shed``, ``deadline``, ``degraded``,
        ``error``, or ``cancelled``.
        """
        self.counter(
            SERVE_REQUESTS, "serve requests by endpoint and outcome"
        ).inc(1, endpoint=endpoint, outcome=outcome)
        self.histogram(
            SERVE_LATENCY,
            "serve request latency by endpoint",
            buckets=SERVE_LATENCY_BUCKETS,
        ).observe(seconds, endpoint=endpoint)

    def record_cell(self, experiment: str, seconds: float, ok: bool) -> None:
        self.counter(RUNNER_CELLS, "grid cells executed by status").inc(
            1, status="ok" if ok else "failed"
        )
        self.histogram(
            RUNNER_CELL_SECONDS,
            "wall seconds per grid cell",
            buckets=CELL_SECONDS_BUCKETS,
        ).observe(seconds, experiment=experiment)


# ---------------------------------------------------------------------------
# Context propagation
# ---------------------------------------------------------------------------

_ACTIVE_METRICS: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_obs_metrics", default=None
)


def current_metrics() -> Optional[MetricsRegistry]:
    """The context's active registry, or ``None`` when metrics are off."""
    return _ACTIVE_METRICS.get()


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the context's active metrics sink."""
    token = _ACTIVE_METRICS.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE_METRICS.reset(token)
