"""``repro.obs`` — tracing, metrics, progress, and profiling.

The simulator's answer to the paper's four tcpdump observation points:
a context-propagated span tracer over the request pipeline
(:mod:`repro.obs.tracer`), a process-local metrics registry with JSON
and Prometheus export (:mod:`repro.obs.metrics`), a live progress line
for grid runs (:mod:`repro.obs.progress`), and the ``--profile``
report (:mod:`repro.obs.profile`).

Everything here defaults to **off**: with no tracer or registry
installed the instrumentation points in ``netsim``/``cdn``/``origin``/
``core`` cost one ``ContextVar`` read each and allocate nothing.
"""

from __future__ import annotations

from repro.obs.metrics import (
    AMPLIFICATION_FACTOR,
    CACHE_LOOKUPS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    RANGE_REWRITES,
    RUNNER_CELL_SECONDS,
    RUNNER_CELLS,
    SEGMENT_EXCHANGES,
    SEGMENT_REQUEST_BYTES,
    SEGMENT_RESPONSE_BYTES_DELIVERED,
    SEGMENT_RESPONSE_BYTES_SENT,
    current_metrics,
    use_metrics,
)
from repro.obs.profile import CellProfile, render_profile
from repro.obs.progress import ProgressReporter
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    current_span,
    current_tracer,
    use_tracer,
)

__all__ = [
    "AMPLIFICATION_FACTOR",
    "CACHE_LOOKUPS",
    "CellProfile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "ProgressReporter",
    "RANGE_REWRITES",
    "RUNNER_CELLS",
    "RUNNER_CELL_SECONDS",
    "SEGMENT_EXCHANGES",
    "SEGMENT_REQUEST_BYTES",
    "SEGMENT_RESPONSE_BYTES_DELIVERED",
    "SEGMENT_RESPONSE_BYTES_SENT",
    "Span",
    "SpanRecord",
    "Tracer",
    "current_metrics",
    "current_span",
    "current_tracer",
    "render_profile",
    "use_metrics",
    "use_tracer",
]
