"""``repro.obs`` — tracing, metrics, progress, and profiling.

The simulator's answer to the paper's four tcpdump observation points:
a context-propagated span tracer over the request pipeline
(:mod:`repro.obs.tracer`), a process-local metrics registry with JSON
and Prometheus export (:mod:`repro.obs.metrics`), a live progress line
for grid runs (:mod:`repro.obs.progress`), and the ``--profile``
report (:mod:`repro.obs.profile`).

Everything here defaults to **off**: with no tracer or registry
installed the instrumentation points in ``netsim``/``cdn``/``origin``/
``core`` cost one ``ContextVar`` read each and allocate nothing.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    chrome_trace_from_jsonl,
    write_chrome_trace,
    write_prometheus_textfile,
)
from repro.obs.metrics import (
    AMPLIFICATION_FACTOR,
    CACHE_LOOKUPS,
    Counter,
    FASTPATH_CELLS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    RANGE_REWRITES,
    RUNNER_CELL_SECONDS,
    RUNNER_CELLS,
    SEGMENT_EXCHANGES,
    SEGMENT_REQUEST_BYTES,
    SEGMENT_RESPONSE_BYTES_DELIVERED,
    SEGMENT_RESPONSE_BYTES_SENT,
    current_metrics,
    use_metrics,
)
from repro.obs.profile import CellProfile, render_profile
from repro.obs.progress import ProgressReporter
from repro.obs.runlog import (
    CellRecord,
    RunDiff,
    RunLedger,
    RunLogError,
    RunRecord,
    diff_runs,
    record_from_analysis,
    record_from_dict,
    record_from_recommendations,
    record_from_runall,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    current_span,
    current_tracer,
    use_tracer,
)

__all__ = [
    "AMPLIFICATION_FACTOR",
    "CACHE_LOOKUPS",
    "CellProfile",
    "CellRecord",
    "Counter",
    "FASTPATH_CELLS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "ProgressReporter",
    "RANGE_REWRITES",
    "RUNNER_CELLS",
    "RUNNER_CELL_SECONDS",
    "RunDiff",
    "RunLedger",
    "RunLogError",
    "RunRecord",
    "SEGMENT_EXCHANGES",
    "SEGMENT_REQUEST_BYTES",
    "SEGMENT_RESPONSE_BYTES_DELIVERED",
    "SEGMENT_RESPONSE_BYTES_SENT",
    "Span",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "chrome_trace_events",
    "chrome_trace_from_jsonl",
    "current_metrics",
    "current_span",
    "current_tracer",
    "diff_runs",
    "record_from_analysis",
    "record_from_dict",
    "record_from_recommendations",
    "record_from_runall",
    "render_profile",
    "use_metrics",
    "use_tracer",
    "write_chrome_trace",
    "write_prometheus_textfile",
]
