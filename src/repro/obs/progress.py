"""Live progress reporting for long grid runs.

`run-all` sweeps ~350 cells; on a laptop that is minutes of silence
without this.  :class:`ProgressReporter` is the observer the
:class:`~repro.runner.executor.GridRunner` calls after every finished
cell — it renders a single status line (done/failed counts, ETA from
the observed rate, and the label of the most recent cell, e.g. the
current vendor×size) and keeps rewriting it in place on a TTY or
emitting periodic plain lines on anything else (CI logs).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO


def _format_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Streams one progress line per finished grid cell.

    Use as the runner's ``observer`` callback::

        reporter = ProgressReporter(total=len(grid.cells))
        runner = GridRunner(observer=reporter)

    On a TTY the line is redrawn in place (``\\r``); otherwise a plain
    line is printed at most every ``interval_s`` seconds (and always for
    the final cell) so CI logs stay readable.
    """

    def __init__(
        self,
        total: int = 0,
        stream: Optional[TextIO] = None,
        interval_s: float = 2.0,
        prefix: str = "run",
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.prefix = prefix
        self.done = 0
        self.failed = 0
        self._started = time.perf_counter()
        self._last_emit = 0.0
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._line_open = False

    # The runner calls this as observer(outcome, done, total).
    def __call__(self, outcome: Any, done: int, total: int) -> None:
        self.done = done
        self.total = total or self.total
        if outcome is not None and not getattr(outcome, "ok", True):
            self.failed += 1
        label = ""
        if outcome is not None:
            label = getattr(getattr(outcome, "cell", None), "label", "") or ""
        self.update(label)

    def update(self, label: str = "") -> None:
        now = time.perf_counter()
        final = self.total and self.done >= self.total
        if not self._is_tty and not final and (now - self._last_emit) < self.interval_s:
            return
        self._last_emit = now
        line = self._render(label, now)
        if self._is_tty:
            self.stream.write("\r" + line + "\x1b[K")
            self._line_open = True
            if final:
                self.stream.write("\n")
                self._line_open = False
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def _render(self, label: str, now: float) -> str:
        elapsed = now - self._started
        parts = [f"{self.prefix}: {self.done}/{self.total or '?'} cells"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.done and self.total and self.done < self.total:
            eta = elapsed / self.done * (self.total - self.done)
            parts.append(f"eta {_format_eta(eta)}")
        elif self.total and self.done >= self.total:
            parts.append(f"done in {_format_eta(elapsed)}")
        if label:
            parts.append(label)
        return " | ".join(parts)

    def close(self) -> None:
        """Terminate an in-place line so later output starts clean."""
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False
