"""Trace and metrics exporters for standard tooling.

Two export targets:

* **Chrome trace-event JSON** (Perfetto / ``chrome://tracing``
  loadable) built from the span + exchange JSONL a traced run already
  writes (``run-all --trace``).  Spans become complete (``"X"``)
  events on one thread lane per trace id; per-exchange
  :class:`~repro.netsim.trace.TraceEvent` lines become instant
  (``"i"``) events carrying their byte counts as args.  Timestamps are
  the simulator's deterministic clock (microseconds), so the exported
  file is byte-stable across identical runs.
* **Prometheus textfile-exporter output**: a metrics snapshot rendered
  as text exposition and written atomically (tmp + ``os.replace``),
  the contract node-exporter's textfile collector expects — it must
  never scrape a half-written file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Mapping, Tuple, Union

#: Microseconds per simulated second (trace-event ``ts``/``dur`` unit).
_US = 1e6

#: Process id used for every exported event (one simulated process).
_PID = 1

#: Keys every exported trace event carries (the CI validity check).
TRACE_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def _thread_ids(spans: Iterable[Any], events: Iterable[Any]) -> Dict[str, int]:
    """Map trace ids to small integer thread ids, first-seen order."""
    tids: Dict[str, int] = {}
    for span in spans:
        if span.trace_id not in tids:
            tids[span.trace_id] = len(tids) + 1
    for event in events:
        trace_id = event.trace_id if event.trace_id is not None else "untraced"
        if trace_id not in tids:
            tids[trace_id] = len(tids) + 1
    return tids


def chrome_trace_events(
    spans: Iterable[Any], events: Iterable[Any]
) -> List[Dict[str, Any]]:
    """Flatten spans and exchanges into trace-event dicts.

    ``spans`` are :class:`~repro.obs.tracer.SpanRecord` objects;
    ``events`` are :class:`~repro.netsim.trace.TraceEvent` objects.
    Output order is deterministic: thread-name metadata first, then
    spans in completion order, then exchanges in sequence order.
    """
    span_list = list(spans)
    event_list = list(events)
    tids = _thread_ids(span_list, event_list)
    out: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0.0,
            "pid": _PID,
            "tid": tid,
            "args": {"name": trace_id},
        }
        for trace_id, tid in tids.items()
    ]
    for span in span_list:
        args: Dict[str, Any] = dict(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        out.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "pid": _PID,
                "tid": tids[span.trace_id],
                "args": args,
            }
        )
    for event in event_list:
        trace_id = event.trace_id if event.trace_id is not None else "untraced"
        out.append(
            {
                "name": f"{event.segment} exchange",
                "cat": "exchange",
                "ph": "i",
                "s": "t",
                # Exchanges carry ordering, not time: spread them one
                # microsecond apart so Perfetto renders them in order.
                "ts": float(event.sequence),
                "pid": _PID,
                "tid": tids[trace_id],
                "args": {
                    "segment": event.segment,
                    "status": event.status,
                    "request_bytes": event.request_bytes,
                    "response_bytes_sent": event.response_bytes_sent,
                    "response_bytes_delivered": event.response_bytes_delivered,
                    "truncated": event.truncated,
                    "note": event.note,
                },
            }
        )
    return out


def chrome_trace(spans: Iterable[Any], events: Iterable[Any]) -> Dict[str, Any]:
    """The full Chrome trace-event JSON object for one run."""
    return {
        "traceEvents": chrome_trace_events(spans, events),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.export"},
    }


def chrome_trace_from_jsonl(stream: IO[str]) -> Dict[str, Any]:
    """Build the Chrome trace object from a joined span/exchange JSONL
    stream (the ``run-all --trace`` output format)."""
    from repro.netsim.trace import load_joined_jsonl

    events, spans = load_joined_jsonl(stream)
    return chrome_trace(spans, events)


def write_chrome_trace(
    trace: Mapping[str, Any], path: Union[str, Path]
) -> Path:
    """Serialize one Chrome trace object to ``path`` (stable key order)."""
    target = Path(path)
    target.write_text(
        json.dumps(dict(trace), sort_keys=True, indent=1) + "\n",
        encoding="utf-8",
    )
    return target


def write_prometheus_textfile(
    snapshot: Mapping[str, Any], path: Union[str, Path]
) -> Tuple[Path, int]:
    """Render ``snapshot`` as exposition text and write it atomically.

    ``snapshot`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    dict (the shape run records persist).  The write goes to a
    same-directory temp file first and lands via ``os.replace`` so a
    textfile collector never reads a torn file.  Returns the target
    path and the number of metric families written.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.merge_snapshot(dict(snapshot))
    content = registry.to_prometheus()
    target = Path(path)
    scratch = target.with_name(target.name + ".tmp")
    scratch.write_text(content, encoding="utf-8")
    os.replace(scratch, target)
    return target, len(registry)
