"""Persistent run ledger: schema-versioned records of every run.

The paper's methodology is longitudinal — the same attack observed from
four tcpdump vantage points, compared across runs.  The simulator's
single-run observability (spans, metrics, profiles) threw everything
away when the process exited; this module is the storage layer that
keeps it.  Every entry point (``run-all``, ``analyze``, ``recommend``,
faulted runs) can emit one :class:`RunRecord` — command, config digest,
phase timings, per-cell timings, fast-path counters, the full metrics
snapshot, and artifact digests — appended to an append-only JSONL
ledger (:class:`RunLedger`).

Determinism contract: records never read the wall clock themselves.
The timestamp comes from an **injected clock** (any ``() -> float``;
``time.time`` by default) and every duration is an input, so a fixed
clock plus fixed inputs yields byte-identical records —
``tests/obs/test_runlog.py`` pins this.  Serialization is canonical
JSON (sorted keys, fixed separators) and the loader is strict: unknown
schema versions and malformed payloads raise :class:`RunLogError`
instead of half-loading, with the single exception of a torn final
line left by a killed writer, which is skipped like the checkpoint
journal's.

Cross-run analysis lives here too: :func:`diff_runs` computes per-cell
timing deltas and amplification-factor drift between two ledger
entries, and :meth:`RunDiff.gate_failures` turns them into the CI
gate behind ``repro obs diff --gate`` — per-cell slowdowns that the
coarse wall-clock benchmark gate averages away fail loudly instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

try:  # advisory file locking is POSIX-only; appends degrade gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.analysis.recommend import RecommendationReport
    from repro.analysis.report import AnalysisReport
    from repro.runner.runall import RunAllReport

#: Current on-disk schema version; bump on any shape change.
RUNLOG_SCHEMA_VERSION = 1

#: Default ledger file name (CLI ``--runlog`` with no argument).
RUNLOG_FILENAME = "runlog.jsonl"

#: A timestamp source: ``() -> float`` epoch seconds.  Injected so
#: tests (and resumed runs) can pin records byte-for-byte.
Clock = Callable[[], float]

MB = 1 << 20


class RunLogError(ReproError):
    """A ledger file or run record failed schema or type validation."""


def config_digest(config: Mapping[str, Any]) -> str:
    """Stable digest over a run's configuration mapping."""
    token = json.dumps(dict(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def artifact_digest(path: Union[str, Path]) -> str:
    """SHA-256 of one written artifact file."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


@dataclass(frozen=True)
class CellRecord:
    """One grid cell's timing, as persisted in a run record."""

    label: str
    experiment: str
    seconds: float
    ok: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "experiment": self.experiment,
            "seconds": self.seconds,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class RunRecord:
    """One persisted run: what ran, how long, and what it produced."""

    schema_version: int
    #: Deterministic id: digest over ``(started_at, command, config)``.
    run_id: str
    #: Entry point (``run-all`` / ``analyze`` / ``recommend``).
    command: str
    #: Human label, e.g. ``run-all-quick`` or ``run-all-faults``.
    label: str
    #: Injected-clock epoch seconds when the record was built.
    started_at: float
    #: End-to-end wall seconds for the run being described.
    wall_s: float
    workers: int
    cell_count: int
    #: The knobs that shaped the run (quick/exact/faults/seed/sizes...).
    config: Dict[str, Any] = field(default_factory=dict)
    config_digest: str = ""
    #: Phase name -> wall seconds (``fastpath``/``grid``/``validate``/...).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Per-cell timings, grid order.
    cells: Tuple[CellRecord, ...] = ()
    #: Stable key -> amplification (or bound/residual) factor.  Keys:
    #: ``sbr:<vendor>:<size>``, ``obr:<fcdn>:<bcdn>``,
    #: ``ccfc:<vendor>:<size>``, ``faulted:<vendor>:<size>``,
    #: ``bound:<kind>:<subject>``, ``residual:<kind>:<subject>``.
    factors: Dict[str, float] = field(default_factory=dict)
    #: Fast-path counters (``None`` for exact/observability runs).
    fastpath: Optional[Dict[str, Any]] = None
    #: Full :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dump.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Written artifact name -> SHA-256 content digest.
    artifacts: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "command": self.command,
            "label": self.label,
            "started_at": self.started_at,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "cell_count": self.cell_count,
            "config": dict(self.config),
            "config_digest": self.config_digest,
            "phase_seconds": dict(self.phase_seconds),
            "cells": [cell.to_dict() for cell in self.cells],
            "factors": dict(self.factors),
            "fastpath": dict(self.fastpath) if self.fastpath is not None else None,
            "metrics": self.metrics,
            "artifacts": dict(self.artifacts),
        }

    def to_json(self) -> str:
        """Canonical one-line serialization (ledger line format)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def cell_seconds(self) -> float:
        return sum(cell.seconds for cell in self.cells)


def _require(payload: Mapping[str, Any], key: str, kind: type) -> Any:
    if key not in payload:
        raise RunLogError(f"run record is missing {key!r}")
    value = payload[key]
    # bool is an int subclass; a stray true/false in a count field must
    # fail validation, not pass as 1/0.
    if isinstance(value, bool) and kind is not bool:
        raise RunLogError(
            f"run record field {key!r} must be {kind.__name__}, got bool"
        )
    if not isinstance(value, kind):
        if kind is float and isinstance(value, int):
            return float(value)
        raise RunLogError(
            f"run record field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _float_map(payload: Mapping[str, Any], key: str) -> Dict[str, float]:
    raw = payload.get(key, {})
    if not isinstance(raw, Mapping):
        raise RunLogError(f"run record field {key!r} must be an object")
    out: Dict[str, float] = {}
    for name, value in raw.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RunLogError(f"run record {key}[{name!r}] must be a number")
        out[str(name)] = float(value)
    return out


def record_from_serve(
    config: Mapping[str, Any],
    wall_s: float,
    requests_total: int,
    metrics: Mapping[str, Any],
    clock: Optional[Clock] = None,
    label: str = "serve",
) -> RunRecord:
    """Persist one ``repro serve`` session at drain time.

    ``cell_count`` carries the total requests seen (admitted + shed);
    the per-outcome split lives in the metrics snapshot under
    ``repro_serve_requests_total``.
    """
    return _new_record(
        "serve",
        label,
        config,
        wall_s,
        clock,
        workers=int(config.get("workers", 1)),
        cell_count=requests_total,
        metrics=dict(metrics),
    )


def record_from_dict(payload: Mapping[str, Any]) -> RunRecord:
    """Validate and type one raw JSON payload into a :class:`RunRecord`."""
    if not isinstance(payload, Mapping):
        raise RunLogError(
            f"run record must be an object, got {type(payload).__name__}"
        )
    version = _require(payload, "schema_version", int)
    if version != RUNLOG_SCHEMA_VERSION:
        raise RunLogError(
            f"unknown run-record schema version {version} "
            f"(this build reads version {RUNLOG_SCHEMA_VERSION})"
        )
    raw_cells = payload.get("cells", [])
    if not isinstance(raw_cells, Sequence) or isinstance(raw_cells, (str, bytes)):
        raise RunLogError("run record field 'cells' must be an array")
    cells: List[CellRecord] = []
    for entry in raw_cells:
        if not isinstance(entry, Mapping):
            raise RunLogError("run record cell entries must be objects")
        cells.append(
            CellRecord(
                label=_require(entry, "label", str),
                experiment=_require(entry, "experiment", str),
                seconds=_require(entry, "seconds", float),
                ok=_require(entry, "ok", bool),
            )
        )
    raw_config = payload.get("config", {})
    if not isinstance(raw_config, Mapping):
        raise RunLogError("run record field 'config' must be an object")
    raw_fastpath = payload.get("fastpath")
    if raw_fastpath is not None and not isinstance(raw_fastpath, Mapping):
        raise RunLogError("run record field 'fastpath' must be an object or null")
    raw_metrics = payload.get("metrics", {})
    if not isinstance(raw_metrics, Mapping):
        raise RunLogError("run record field 'metrics' must be an object")
    raw_artifacts = payload.get("artifacts", {})
    if not isinstance(raw_artifacts, Mapping):
        raise RunLogError("run record field 'artifacts' must be an object")
    artifacts: Dict[str, str] = {}
    for name, digest in raw_artifacts.items():
        if not isinstance(digest, str):
            raise RunLogError(f"run record artifacts[{name!r}] must be a string")
        artifacts[str(name)] = digest
    return RunRecord(
        schema_version=version,
        run_id=_require(payload, "run_id", str),
        command=_require(payload, "command", str),
        label=_require(payload, "label", str),
        started_at=_require(payload, "started_at", float),
        wall_s=_require(payload, "wall_s", float),
        workers=_require(payload, "workers", int),
        cell_count=_require(payload, "cell_count", int),
        config=dict(raw_config),
        config_digest=_require(payload, "config_digest", str),
        phase_seconds=_float_map(payload, "phase_seconds"),
        cells=tuple(cells),
        factors=_float_map(payload, "factors"),
        fastpath=dict(raw_fastpath) if raw_fastpath is not None else None,
        metrics=dict(raw_metrics),
        artifacts=artifacts,
    )


def record_from_json(line: str) -> RunRecord:
    """Parse one ledger line through the strict loader."""
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise RunLogError(f"run record line is not JSON: {error}")
    return record_from_dict(payload)


# ---------------------------------------------------------------------------
# Record builders, one per entry point
# ---------------------------------------------------------------------------

def _run_id(started_at: float, command: str, digest: str) -> str:
    token = f"{started_at!r}|{command}|{digest}"
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:16]


def _new_record(
    command: str,
    label: str,
    config: Mapping[str, Any],
    wall_s: float,
    clock: Optional[Clock],
    **fields: Any,
) -> RunRecord:
    started_at = (clock if clock is not None else time.time)()
    digest = config_digest(config)
    return RunRecord(
        schema_version=RUNLOG_SCHEMA_VERSION,
        run_id=_run_id(started_at, command, digest),
        command=command,
        label=label,
        started_at=started_at,
        wall_s=wall_s,
        config=dict(config),
        config_digest=digest,
        **fields,
    )


def record_from_runall(
    report: "RunAllReport",
    label: str,
    config: Mapping[str, Any],
    wall_s: float,
    artifacts: Optional[Mapping[str, str]] = None,
    clock: Optional[Clock] = None,
) -> RunRecord:
    """Build the persisted record for one finished ``run-all``.

    Factor keys cover every measured artifact: ``sbr:<vendor>:<size>``
    per Table IV cell, ``obr:<fcdn>:<bcdn>`` per Table V cascade,
    ``ccfc:<vendor>:<size>`` per compression-conversion cell, and
    ``faulted:<vendor>:<size>`` per Table VI row, so two ledger entries
    diff cell-by-cell without re-reading the rendered tables.
    """
    factors: Dict[str, float] = {}
    for row in report.table4:
        for size, factor in row.factors.items():
            factors[f"sbr:{row.vendor}:{size}"] = factor
    for row in report.table5:
        factors[f"obr:{row.fcdn}:{row.bcdn}"] = row.factor
    for row in report.table_ccfc:
        for size, factor in row.factors.items():
            factors[f"ccfc:{row.vendor}:{size}"] = factor
    for row in report.table_faults:
        factors[f"faulted:{row.vendor}:{row.resource_size}"] = row.faulted_factor
    stats = report.fastpath
    fastpath: Optional[Dict[str, Any]] = None
    if stats is not None:
        fastpath = {
            "answered": stats.answered,
            "refused": stats.refused,
            "ineligible": stats.ineligible,
            "validated": stats.validated,
            "calibration_runs": stats.calibration_runs,
            "hit_rate": stats.hit_rate,
        }
    return _new_record(
        "run-all",
        label,
        config,
        wall_s,
        clock,
        workers=report.workers,
        cell_count=report.cell_count,
        phase_seconds=dict(report.phase_seconds),
        cells=tuple(
            CellRecord(
                label=cell.label,
                experiment=cell.experiment,
                seconds=cell.duration_s,
                ok=cell.ok,
            )
            for cell in report.cells
        ),
        factors=factors,
        fastpath=fastpath,
        metrics=dict(report.metrics),
        artifacts=dict(artifacts) if artifacts is not None else {},
    )


def record_from_analysis(
    report: "AnalysisReport",
    config: Mapping[str, Any],
    wall_s: float,
    clock: Optional[Clock] = None,
) -> RunRecord:
    """Persist one ``repro analyze`` run: every static bound by subject."""
    factors = {
        f"bound:{finding.kind}:{finding.subject}": finding.factor_bound
        for finding in report.findings
        if finding.factor_bound > 0
    }
    return _new_record(
        "analyze",
        "analyze",
        config,
        wall_s,
        clock,
        workers=1,
        cell_count=len(report.findings),
        factors=factors,
    )


def record_from_recommendations(
    report: "RecommendationReport",
    config: Mapping[str, Any],
    wall_s: float,
    clock: Optional[Clock] = None,
) -> RunRecord:
    """Persist one ``repro recommend`` run: chosen residuals by subject."""
    factors: Dict[str, float] = {}
    for recommendation in report.recommendations:
        chosen = recommendation.chosen
        if chosen is not None:
            key = f"residual:{recommendation.kind}:{recommendation.subject}"
            factors[key] = chosen.residual_factor
    return _new_record(
        "recommend",
        "recommend",
        config,
        wall_s,
        clock,
        workers=1,
        cell_count=len(report.recommendations),
        factors=factors,
    )


# ---------------------------------------------------------------------------
# The ledger file
# ---------------------------------------------------------------------------

class RunLedger:
    """An append-only JSONL file of run records.

    Appends are **multi-writer safe**: each record goes down as one
    ``os.write`` of the full line on a raw ``O_APPEND`` descriptor —
    no userspace buffering that could flush half a line — under an
    advisory ``fcntl.flock`` exclusive lock where the platform offers
    one.  ``O_APPEND`` alone keeps independent single writes from
    landing at the same offset; the lock additionally serializes the
    (pathological) short-write continuation loop, so concurrent
    processes interleave whole lines, never torn ones — pinned by the
    multiprocess hammer in ``tests/obs/test_runlog_concurrent.py``.  A
    killed writer leaves at worst one torn final line, which
    :meth:`load` skips (any *other* malformed line raises: a corrupt
    middle means the file was edited, and the strict loader refuses to
    guess).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record; durably written before returning."""
        payload = (record.to_json() + "\n").encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                except OSError:  # pragma: no cover - e.g. NFS without locks
                    pass  # advisory only; O_APPEND still applies per write
            view = memoryview(payload)
            while view:
                written = os.write(fd, view)
                view = view[written:]
        finally:
            # Closing the descriptor releases any flock it held.
            os.close(fd)
        return record

    def load(self) -> List[RunRecord]:
        """Every intact record, oldest first (strict; see class docs)."""
        if not self.path.exists():
            return []
        lines = self.path.read_text(encoding="utf-8").split("\n")
        records: List[RunRecord] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(record_from_json(line))
            except RunLogError:
                if index == len(lines) - 1:
                    # Torn tail from a killed writer; everything before
                    # it is intact.
                    continue
                raise
        return records

    def resolve(self, ref: str) -> RunRecord:
        """Find one record by index (``0``, ``-1``) or run-id prefix."""
        records = self.load()
        if not records:
            raise RunLogError(f"ledger {self.path} is empty")
        try:
            index = int(ref)
        except ValueError:
            matches = [r for r in records if r.run_id.startswith(ref)]
            if not matches:
                raise RunLogError(f"no run with id prefix {ref!r} in {self.path}")
            if len(matches) > 1:
                raise RunLogError(
                    f"run id prefix {ref!r} is ambiguous "
                    f"({len(matches)} matches in {self.path})"
                )
            return matches[0]
        try:
            return records[index]
        except IndexError:
            raise RunLogError(
                f"run index {index} out of range "
                f"({len(records)} record(s) in {self.path})"
            )

    def __len__(self) -> int:
        return len(self.load())


# ---------------------------------------------------------------------------
# Cross-run diffing (the regression gate)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellDelta:
    """One cell's timing in both runs."""

    label: str
    experiment: str
    before_s: float
    after_s: float

    @property
    def delta_s(self) -> float:
        return self.after_s - self.before_s

    @property
    def ratio(self) -> float:
        """``after / before`` (``inf`` when before was zero and after not)."""
        if self.before_s > 0:
            return self.after_s / self.before_s
        return float("inf") if self.after_s > 0 else 1.0


@dataclass(frozen=True)
class FactorDelta:
    """One amplification/bound factor that differs between two runs."""

    key: str
    before: float
    after: float

    @property
    def relative(self) -> float:
        if self.before != 0:
            return (self.after - self.before) / self.before
        return float("inf") if self.after != 0 else 0.0


@dataclass(frozen=True)
class RunDiff:
    """Everything that changed between two ledger entries.

    The timing gate flags a cell only when **both** tripwires fire: the
    slowdown ratio exceeds ``1 + threshold`` *and* the cell's after-time
    exceeds ``min_seconds`` — sub-threshold cells are too noisy to gate
    on and too cheap to matter.  Factors are deterministic simulation
    outputs, so *any* drift beyond ``factor_tolerance`` (relative) is a
    correctness regression, in either direction.
    """

    before: RunRecord
    after: RunRecord
    cells: Tuple[CellDelta, ...]
    added_cells: Tuple[str, ...]
    removed_cells: Tuple[str, ...]
    factor_deltas: Tuple[FactorDelta, ...]
    added_factors: Tuple[str, ...]
    removed_factors: Tuple[str, ...]
    threshold: float
    min_seconds: float
    factor_tolerance: float

    def timing_regressions(self) -> Tuple[CellDelta, ...]:
        """Cells slower than both tripwires allow, worst first."""
        flagged = [
            delta
            for delta in self.cells
            if delta.after_s > self.min_seconds
            and delta.ratio > 1.0 + self.threshold
        ]
        return tuple(sorted(flagged, key=lambda d: -d.delta_s))

    def factor_regressions(self) -> Tuple[FactorDelta, ...]:
        """Factors that drifted beyond tolerance, largest drift first."""
        flagged = [
            delta
            for delta in self.factor_deltas
            if abs(delta.relative) > self.factor_tolerance
        ]
        return tuple(sorted(flagged, key=lambda d: -abs(d.relative)))

    def gate_failures(self) -> List[str]:
        """Human-readable gate violations (empty means the gate passes)."""
        failures = [
            f"cell {delta.label} slowed {delta.ratio:.2f}x "
            f"({delta.before_s:.3f}s -> {delta.after_s:.3f}s)"
            for delta in self.timing_regressions()
        ]
        failures.extend(
            f"factor {delta.key} drifted {delta.before:.6g} -> {delta.after:.6g} "
            f"({delta.relative:+.2%})"
            for delta in self.factor_regressions()
        )
        return failures

    @property
    def ok(self) -> bool:
        return not self.gate_failures()


def diff_runs(
    before: RunRecord,
    after: RunRecord,
    threshold: float = 0.5,
    min_seconds: float = 0.1,
    factor_tolerance: float = 1e-6,
) -> RunDiff:
    """Compare two run records cell-by-cell and factor-by-factor."""
    if threshold < 0:
        raise RunLogError(f"threshold must be >= 0, got {threshold}")
    if min_seconds < 0:
        raise RunLogError(f"min-seconds must be >= 0, got {min_seconds}")
    before_cells = {cell.label: cell for cell in before.cells}
    after_cells = {cell.label: cell for cell in after.cells}
    shared = sorted(set(before_cells) & set(after_cells))
    cells = tuple(
        CellDelta(
            label=label,
            experiment=after_cells[label].experiment,
            before_s=before_cells[label].seconds,
            after_s=after_cells[label].seconds,
        )
        for label in shared
    )
    shared_factors = sorted(set(before.factors) & set(after.factors))
    factor_deltas = tuple(
        FactorDelta(key=key, before=before.factors[key], after=after.factors[key])
        for key in shared_factors
        if before.factors[key] != after.factors[key]
    )
    return RunDiff(
        before=before,
        after=after,
        cells=cells,
        added_cells=tuple(sorted(set(after_cells) - set(before_cells))),
        removed_cells=tuple(sorted(set(before_cells) - set(after_cells))),
        factor_deltas=factor_deltas,
        added_factors=tuple(sorted(set(after.factors) - set(before.factors))),
        removed_factors=tuple(sorted(set(before.factors) - set(after.factors))),
        threshold=threshold,
        min_seconds=min_seconds,
        factor_tolerance=factor_tolerance,
    )
