"""The numbers the paper printed, used for paper-vs-measured comparison.

Sources: Table IV (SBR amplification factors at 1/10/25 MB), Table V
(OBR max n and amplification factors), and the §V-D narrative for
Fig 7's saturation points.  These are *reference values from the
original testbed*, not assertions this simulator must hit exactly — the
tests check shape with explicit tolerances documented in EXPERIMENTS.md.
"""

from __future__ import annotations

MB = 1 << 20

#: Table IV: vendor -> {resource size in bytes: amplification factor}.
PAPER_TABLE4_FACTORS = {
    "akamai": {1 * MB: 1707, 10 * MB: 16991, 25 * MB: 43093},
    "alibaba": {1 * MB: 1056, 10 * MB: 10498, 25 * MB: 26241},
    "azure": {1 * MB: 1401, 10 * MB: 15016, 25 * MB: 23481},
    "cdn77": {1 * MB: 1612, 10 * MB: 15915, 25 * MB: 40390},
    "cdnsun": {1 * MB: 1578, 10 * MB: 15705, 25 * MB: 38730},
    "cloudflare": {1 * MB: 1282, 10 * MB: 12791, 25 * MB: 31836},
    "cloudfront": {1 * MB: 1356, 10 * MB: 9214, 25 * MB: 9281},
    "fastly": {1 * MB: 1286, 10 * MB: 12836, 25 * MB: 31820},
    "gcore": {1 * MB: 1763, 10 * MB: 17197, 25 * MB: 43330},
    "huawei": {1 * MB: 1465, 10 * MB: 14631, 25 * MB: 36335},
    "keycdn": {1 * MB: 724, 10 * MB: 7117, 25 * MB: 17744},
    "stackpath": {1 * MB: 1297, 10 * MB: 13007, 25 * MB: 32491},
    "tencent": {1 * MB: 1308, 10 * MB: 12997, 25 * MB: 32438},
}

#: Table V: (fcdn, bcdn) -> (max n, bcdn-origin bytes, fcdn-bcdn bytes,
#: amplification factor).  StackPath -> StackPath is excluded by the
#: paper (a CDN is not cascaded with itself).
PAPER_TABLE5 = {
    ("cdn77", "akamai"): (5455, 1676, 6350944, 3789.35),
    ("cdn77", "azure"): (64, 1620, 86745, 53.55),
    ("cdn77", "stackpath"): (5455, 1808, 6413097, 3547.07),
    ("cdnsun", "akamai"): (5456, 1676, 6337810, 3781.51),
    ("cdnsun", "azure"): (64, 1620, 84481, 52.15),
    ("cdnsun", "stackpath"): (5456, 1808, 6414011, 3547.57),
    ("cloudflare", "akamai"): (10750, 1676, 12456915, 7432.53),
    ("cloudflare", "azure"): (64, 1620, 85386, 52.71),
    ("cloudflare", "stackpath"): (10750, 1940, 12636554, 6513.69),
    ("stackpath", "akamai"): (10801, 1676, 12522091, 7471.41),
    ("stackpath", "azure"): (64, 1620, 82191, 50.74),
}

#: Table I membership: every examined CDN is SBR-vulnerable.
PAPER_SBR_VULNERABLE = (
    "akamai", "alibaba", "azure", "cdn77", "cdnsun", "cloudflare",
    "cloudfront", "fastly", "gcore", "huawei", "keycdn", "stackpath",
    "tencent",
)

#: Table II membership: OBR-usable front-ends.
PAPER_OBR_FRONTENDS = ("cdn77", "cdnsun", "cloudflare", "stackpath")

#: Table III membership: OBR-usable back-ends.
PAPER_OBR_BACKENDS = ("akamai", "azure", "stackpath")

#: §V-D: the origin's 1000 Mbps uplink is nearly saturated from m = 11
#: and completely exhausted from m = 14.
PAPER_FIG7_NEAR_SATURATION_M = 11
PAPER_FIG7_FULL_SATURATION_M = 14
