"""Numeric series behind the paper's figures.

* Fig 6a/6b/6c — per-vendor SBR amplification factor, CDN-to-client
  traffic, and origin-to-CDN traffic, swept over resource sizes of
  1–25 MB.
* Fig 7a/7b — client incoming and origin outgoing bandwidth over time
  for m = 1..15 concurrent attack streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cdn.vendors import all_vendor_names
from repro.core.practical import BandwidthAttackSimulation, BandwidthRunResult
from repro.core.sbr import SbrAttack

MB = 1 << 20


@dataclass(frozen=True)
class Fig6Series:
    """One vendor's curve across the three panels of Fig 6."""

    vendor: str
    sizes: Tuple[int, ...]
    #: Fig 6a — amplification factor per size.
    factors: Tuple[float, ...]
    #: Fig 6b — response traffic CDN -> client per size (bytes).
    client_traffic: Tuple[int, ...]
    #: Fig 6c — response traffic origin -> CDN per size (bytes).
    origin_traffic: Tuple[int, ...]


def default_fig6_sizes() -> List[int]:
    """1 MB to 25 MB stepped by 1 MB, as in the paper."""
    return [m * MB for m in range(1, 26)]


def fig6_series(
    vendors: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
) -> List[Fig6Series]:
    """Regenerate the Fig 6 sweep."""
    names = list(vendors) if vendors is not None else all_vendor_names()
    size_list = list(sizes) if sizes is not None else default_fig6_sizes()
    series = []
    for name in names:
        factors: List[float] = []
        client: List[int] = []
        origin: List[int] = []
        for size in size_list:
            result = SbrAttack(name, resource_size=size).run()
            factors.append(result.amplification)
            client.append(result.client_traffic)
            origin.append(result.origin_traffic)
        series.append(
            Fig6Series(
                vendor=name,
                sizes=tuple(size_list),
                factors=tuple(factors),
                client_traffic=tuple(client),
                origin_traffic=tuple(origin),
            )
        )
    return series


def fig7_series(
    ms: Sequence[int] = tuple(range(1, 16)),
    vendor: str = "cloudflare",
    resource_size: int = 10 * MB,
    origin_uplink_mbps: float = 1000.0,
) -> List[BandwidthRunResult]:
    """Regenerate the Fig 7 sweep (one bandwidth run per m)."""
    simulation = BandwidthAttackSimulation(
        vendor=vendor,
        resource_size=resource_size,
        origin_uplink_mbps=origin_uplink_mbps,
    )
    return simulation.sweep(ms)
