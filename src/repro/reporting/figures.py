"""Numeric series behind the paper's figures.

* Fig 6a/6b/6c — per-vendor SBR amplification factor, CDN-to-client
  traffic, and origin-to-CDN traffic, swept over resource sizes of
  1–25 MB.
* Fig 7a/7b — client incoming and origin outgoing bandwidth over time
  for m = 1..15 concurrent attack streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.cdn.vendors import all_vendor_names
from repro.core.practical import BandwidthAttackSimulation, BandwidthRunResult
from repro.core.sbr import SbrAttack, SbrResult

MB = 1 << 20


@dataclass(frozen=True)
class Fig6Series:
    """One vendor's curve across the three panels of Fig 6."""

    vendor: str
    sizes: Tuple[int, ...]
    #: Fig 6a — amplification factor per size.
    factors: Tuple[float, ...]
    #: Fig 6b — response traffic CDN -> client per size (bytes).
    client_traffic: Tuple[int, ...]
    #: Fig 6c — response traffic origin -> CDN per size (bytes).
    origin_traffic: Tuple[int, ...]


def default_fig6_sizes() -> List[int]:
    """1 MB to 25 MB stepped by 1 MB, as in the paper."""
    return [m * MB for m in range(1, 26)]


def fig6_series(
    vendors: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
    runner: Optional[object] = None,
) -> List[Fig6Series]:
    """Regenerate the Fig 6 sweep.

    ``runner`` optionally fans the 13 x 25 cells out over a
    :class:`repro.runner.GridRunner`; merge order is grid order, so the
    series are identical to the serial sweep.
    """
    names = list(vendors) if vendors is not None else all_vendor_names()
    size_list = list(sizes) if sizes is not None else default_fig6_sizes()
    if runner is not None:
        from repro.core.sbr import sbr_grid

        grid_result = runner.run(sbr_grid(names, tuple(size_list), name="fig6-sbr"))
        grid_result.values()  # propagate the first cell failure, like serial
        return fig6_series_from_results(grid_result.value_by_key(), names, size_list)
    results = {
        (name, size): SbrAttack(name, resource_size=size).run()
        for name in names
        for size in size_list
    }
    return fig6_series_from_results(results, names, size_list)


def fig6_series_from_results(
    results: Mapping[Tuple[str, int], SbrResult],
    vendors: Sequence[str],
    sizes: Sequence[int],
) -> List[Fig6Series]:
    """Assemble Fig 6 series from (vendor, size) -> SbrResult mappings."""
    series = []
    for name in vendors:
        cells = [results[(name, size)] for size in sizes]
        series.append(
            Fig6Series(
                vendor=name,
                sizes=tuple(sizes),
                factors=tuple(r.amplification for r in cells),
                client_traffic=tuple(r.client_traffic for r in cells),
                origin_traffic=tuple(r.origin_traffic for r in cells),
            )
        )
    return series


def fig7_series(
    ms: Sequence[int] = tuple(range(1, 16)),
    vendor: str = "cloudflare",
    resource_size: int = 10 * MB,
    origin_uplink_mbps: float = 1000.0,
    runner: Optional[object] = None,
) -> List[BandwidthRunResult]:
    """Regenerate the Fig 7 sweep (one bandwidth run per m).

    With a ``runner``, each m becomes one grid cell; the per-request SBR
    probe is measured once up front and shared with every cell.
    """
    if runner is not None:
        from repro.core.practical import flood_grid

        grid_result = runner.run(
            flood_grid(
                ms,
                vendor=vendor,
                resource_size=resource_size,
                origin_uplink_mbps=origin_uplink_mbps,
            )
        )
        return grid_result.values()
    simulation = BandwidthAttackSimulation(
        vendor=vendor,
        resource_size=resource_size,
        origin_uplink_mbps=origin_uplink_mbps,
    )
    return simulation.sweep(ms)
