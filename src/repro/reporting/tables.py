"""Structured regeneration of the paper's Tables I–V."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdn.vendors import all_vendor_names, profile_class
from repro.core.feasibility import FeasibilityProbe, VendorFeasibility, survey
from repro.core.obr import ObrAttack, vulnerable_combinations
from repro.core.sbr import SbrAttack, exploited_range_cases

MB = 1 << 20


# ---------------------------------------------------------------------------
# Table I — range forwarding behaviors vulnerable to the SBR attack
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    vendor: str
    display_name: str
    vulnerable: bool
    #: (range format, observed policy) pairs that amplify.
    vulnerable_formats: Tuple[Tuple[str, str], ...]


def table1_rows(
    vendors: Optional[Sequence[str]] = None,
    file_size: int = 64 * 1024,
    feasibility: Optional[Dict[str, VendorFeasibility]] = None,
) -> List[Table1Row]:
    """Regenerate Table I by probing each vendor's forwarding policies."""
    results = feasibility if feasibility is not None else survey(vendors, file_size)
    rows = []
    for name in sorted(results):
        verdict = results[name]
        rows.append(
            Table1Row(
                vendor=name,
                display_name=profile_class(name).display_name,
                vulnerable=verdict.sbr_vulnerable,
                vulnerable_formats=tuple(verdict.amplifying_formats()),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table II — forwarding behaviors vulnerable to the OBR attack (FCDN side)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    vendor: str
    display_name: str
    #: Multi-range formats forwarded unchanged.
    lazy_formats: Tuple[str, ...]


def table2_rows(
    vendors: Optional[Sequence[str]] = None,
    file_size: int = 64 * 1024,
    feasibility: Optional[Dict[str, VendorFeasibility]] = None,
) -> List[Table2Row]:
    """Regenerate Table II: vendors usable as the OBR front-end."""
    results = feasibility if feasibility is not None else survey(vendors, file_size)
    rows = []
    for name in sorted(results):
        verdict = results[name]
        if verdict.obr_fcdn_vulnerable:
            rows.append(
                Table2Row(
                    vendor=name,
                    display_name=profile_class(name).display_name,
                    lazy_formats=tuple(verdict.lazy_multi_formats()),
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Table III — replying behaviors vulnerable to the OBR attack (BCDN side)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table3Row:
    vendor: str
    display_name: str
    #: Part-count limit, if the vendor enforces one (Azure's 64).
    part_limit: Optional[int]


def table3_rows(
    vendors: Optional[Sequence[str]] = None,
    file_size: int = 64 * 1024,
    feasibility: Optional[Dict[str, VendorFeasibility]] = None,
) -> List[Table3Row]:
    """Regenerate Table III: vendors usable as the OBR back-end."""
    results = feasibility if feasibility is not None else survey(vendors, file_size)
    rows = []
    for name in sorted(results):
        verdict = results[name]
        if verdict.obr_bcdn_vulnerable:
            assert verdict.reply is not None
            rows.append(
                Table3Row(
                    vendor=name,
                    display_name=profile_class(name).display_name,
                    part_limit=verdict.reply.part_limit,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Table IV — SBR amplification factor vs resource size
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table4Row:
    vendor: str
    display_name: str
    exploited_cases: Tuple[str, ...]
    #: resource size (bytes) -> measured amplification factor.
    factors: Dict[int, float]
    #: resource size (bytes) -> client-side response traffic (bytes).
    client_traffic: Dict[int, int]
    #: resource size (bytes) -> origin-side response traffic (bytes).
    origin_traffic: Dict[int, int]


def table4_rows(
    vendors: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = (1 * MB, 10 * MB, 25 * MB),
) -> List[Table4Row]:
    """Regenerate Table IV by running the SBR attack at each size."""
    names = list(vendors) if vendors is not None else all_vendor_names()
    rows = []
    for name in names:
        factors: Dict[int, float] = {}
        client: Dict[int, int] = {}
        origin: Dict[int, int] = {}
        for size in sizes:
            result = SbrAttack(name, resource_size=size).run()
            factors[size] = result.amplification
            client[size] = result.client_traffic
            origin[size] = result.origin_traffic
        rows.append(
            Table4Row(
                vendor=name,
                display_name=profile_class(name).display_name,
                exploited_cases=tuple(exploited_range_cases(name, max(sizes))),
                factors=factors,
                client_traffic=client,
                origin_traffic=origin,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table V — max OBR amplification per FCDN x BCDN combination
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table5Row:
    fcdn: str
    bcdn: str
    exploited_case_prefix: str
    max_n: int
    bcdn_origin_traffic: int
    fcdn_bcdn_traffic: int
    factor: float


def table5_rows(
    combinations: Optional[Sequence[Tuple[str, str]]] = None,
    resource_size: int = 1024,
) -> List[Table5Row]:
    """Regenerate Table V: search max n per combination, then measure."""
    combos = list(combinations) if combinations is not None else vulnerable_combinations()
    rows = []
    for fcdn, bcdn in combos:
        attack = ObrAttack(fcdn, bcdn, resource_size=resource_size)
        result = attack.run()
        prefix = attack.range_value(3)
        rows.append(
            Table5Row(
                fcdn=fcdn,
                bcdn=bcdn,
                exploited_case_prefix=prefix + ",...",
                max_n=result.overlap_count,
                bcdn_origin_traffic=result.bcdn_origin_traffic,
                fcdn_bcdn_traffic=result.fcdn_bcdn_traffic,
                factor=result.amplification,
            )
        )
    return rows
