"""Structured regeneration of the paper's Tables I–V, plus the faulted
re-amplification table (Table VI) this reproduction adds on top."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cdn.vendors import all_vendor_names, profile_class
from repro.core.feasibility import FeasibilityProbe, VendorFeasibility, survey
from repro.core.obr import ObrAttack, vulnerable_combinations
from repro.core.sbr import SbrAttack, exploited_range_cases

MB = 1 << 20


# ---------------------------------------------------------------------------
# Table I — range forwarding behaviors vulnerable to the SBR attack
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    vendor: str
    display_name: str
    vulnerable: bool
    #: (range format, observed policy) pairs that amplify.
    vulnerable_formats: Tuple[Tuple[str, str], ...]


def table1_rows(
    vendors: Optional[Sequence[str]] = None,
    file_size: int = 64 * 1024,
    feasibility: Optional[Dict[str, VendorFeasibility]] = None,
) -> List[Table1Row]:
    """Regenerate Table I by probing each vendor's forwarding policies."""
    results = feasibility if feasibility is not None else survey(vendors, file_size)
    rows = []
    for name in sorted(results):
        verdict = results[name]
        rows.append(
            Table1Row(
                vendor=name,
                display_name=profile_class(name).display_name,
                vulnerable=verdict.sbr_vulnerable,
                vulnerable_formats=tuple(verdict.amplifying_formats()),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table II — forwarding behaviors vulnerable to the OBR attack (FCDN side)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    vendor: str
    display_name: str
    #: Multi-range formats forwarded unchanged.
    lazy_formats: Tuple[str, ...]


def table2_rows(
    vendors: Optional[Sequence[str]] = None,
    file_size: int = 64 * 1024,
    feasibility: Optional[Dict[str, VendorFeasibility]] = None,
) -> List[Table2Row]:
    """Regenerate Table II: vendors usable as the OBR front-end."""
    results = feasibility if feasibility is not None else survey(vendors, file_size)
    rows = []
    for name in sorted(results):
        verdict = results[name]
        if verdict.obr_fcdn_vulnerable:
            rows.append(
                Table2Row(
                    vendor=name,
                    display_name=profile_class(name).display_name,
                    lazy_formats=tuple(verdict.lazy_multi_formats()),
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Table III — replying behaviors vulnerable to the OBR attack (BCDN side)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table3Row:
    vendor: str
    display_name: str
    #: Part-count limit, if the vendor enforces one (Azure's 64).
    part_limit: Optional[int]


def table3_rows(
    vendors: Optional[Sequence[str]] = None,
    file_size: int = 64 * 1024,
    feasibility: Optional[Dict[str, VendorFeasibility]] = None,
) -> List[Table3Row]:
    """Regenerate Table III: vendors usable as the OBR back-end."""
    results = feasibility if feasibility is not None else survey(vendors, file_size)
    rows = []
    for name in sorted(results):
        verdict = results[name]
        if verdict.obr_bcdn_vulnerable:
            assert verdict.reply is not None
            rows.append(
                Table3Row(
                    vendor=name,
                    display_name=profile_class(name).display_name,
                    part_limit=verdict.reply.part_limit,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Table IV — SBR amplification factor vs resource size
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table4Row:
    vendor: str
    display_name: str
    exploited_cases: Tuple[str, ...]
    #: resource size (bytes) -> measured amplification factor.
    factors: Dict[int, float]
    #: resource size (bytes) -> client-side response traffic (bytes).
    client_traffic: Dict[int, int]
    #: resource size (bytes) -> origin-side response traffic (bytes).
    origin_traffic: Dict[int, int]


def table4_rows(
    vendors: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = (1 * MB, 10 * MB, 25 * MB),
    runner: Optional[object] = None,
) -> List[Table4Row]:
    """Regenerate Table IV by running the SBR attack at each size.

    ``runner`` optionally supplies a :class:`repro.runner.GridRunner`;
    the vendor x size cells then execute through it (in parallel when it
    has workers) with results merged in grid order, which keeps the rows
    identical to the serial path.
    """
    names = list(vendors) if vendors is not None else all_vendor_names()
    if runner is not None:
        from repro.core.sbr import sbr_grid

        grid_result = runner.run(sbr_grid(names, tuple(sizes), name="table4-sbr"))
        grid_result.values()  # propagate the first cell failure, like serial
        return table4_rows_from_results(grid_result.value_by_key(), names, sizes)
    results = {
        (name, size): SbrAttack(name, resource_size=size).run()
        for name in names
        for size in sizes
    }
    return table4_rows_from_results(results, names, sizes)


def table4_rows_from_results(
    results: Dict[Tuple[str, int], object],
    vendors: Sequence[str],
    sizes: Sequence[int],
) -> List[Table4Row]:
    """Assemble Table IV rows from (vendor, size) -> SbrResult mappings."""
    rows = []
    for name in vendors:
        factors: Dict[int, float] = {}
        client: Dict[int, int] = {}
        origin: Dict[int, int] = {}
        for size in sizes:
            result = results[(name, size)]
            factors[size] = result.amplification
            client[size] = result.client_traffic
            origin[size] = result.origin_traffic
        rows.append(
            Table4Row(
                vendor=name,
                display_name=profile_class(name).display_name,
                exploited_cases=tuple(exploited_range_cases(name, max(sizes))),
                factors=factors,
                client_traffic=client,
                origin_traffic=origin,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# CCFC table (ours) — compression-conversion amplification per vendor
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CcfcTableRow:
    """One vendor of the compression-conversion sweep (arXiv 2409.00712)."""

    vendor: str
    display_name: str
    #: Upstream coding the edge negotiated at the largest size (``None``
    #: when the vendor never rewrites or the origin serves identity).
    encoding: Optional[str]
    #: resource size (bytes) -> measured amplification factor.
    factors: Dict[int, float]
    #: resource size (bytes) -> client-side response traffic (bytes).
    client_traffic: Dict[int, int]
    #: resource size (bytes) -> origin-side response traffic (bytes).
    origin_traffic: Dict[int, int]


def ccfc_rows_from_results(
    results: Dict[Tuple[str, int], object],
    vendors: Sequence[str],
    sizes: Sequence[int],
) -> List[CcfcTableRow]:
    """Assemble CCFC rows from (vendor, size) -> CcfcResult mappings."""
    rows = []
    for name in vendors:
        factors: Dict[int, float] = {}
        client: Dict[int, int] = {}
        origin: Dict[int, int] = {}
        for size in sizes:
            result = results[(name, size)]
            factors[size] = result.amplification
            client[size] = result.client_traffic
            origin[size] = result.origin_traffic
        rows.append(
            CcfcTableRow(
                vendor=name,
                display_name=profile_class(name).display_name,
                encoding=results[(name, max(sizes))].encoding,
                factors=factors,
                client_traffic=client,
                origin_traffic=origin,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table VI (ours) — SBR re-amplification under faults and vendor retries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultTableRow:
    """One vendor/size cell of the faulted-SBR table."""

    vendor: str
    display_name: str
    resource_size: int
    seed: int
    clean_factor: float
    faulted_factor: float
    #: Faulted origin bytes over clean origin bytes (>1 = retries
    #: re-shipped fetch windows).
    reamplification: float
    retries: int
    faults: int
    exhausted_fetches: int
    max_attempts: int


def fault_rows_from_results(
    results: Dict[Tuple[Any, ...], Any],
    vendors: Sequence[str],
    sizes: Sequence[int],
    seed: int,
) -> List[FaultTableRow]:
    """Assemble the faulted table from (vendor, size, seed) -> FaultedSbrResult."""
    rows = []
    for name in vendors:
        for size in sizes:
            result = results[(name, size, seed)]
            rows.append(
                FaultTableRow(
                    vendor=name,
                    display_name=profile_class(name).display_name,
                    resource_size=size,
                    seed=seed,
                    clean_factor=result.clean_amplification,
                    faulted_factor=result.amplification,
                    reamplification=result.reamplification,
                    retries=result.retries,
                    faults=result.total_faults,
                    exhausted_fetches=result.exhausted_fetches,
                    max_attempts=result.max_attempts,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Table V — max OBR amplification per FCDN x BCDN combination
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table5Row:
    fcdn: str
    bcdn: str
    exploited_case_prefix: str
    max_n: int
    bcdn_origin_traffic: int
    fcdn_bcdn_traffic: int
    factor: float


def table5_rows(
    combinations: Optional[Sequence[Tuple[str, str]]] = None,
    resource_size: int = 1024,
    runner: Optional[object] = None,
) -> List[Table5Row]:
    """Regenerate Table V: search max n per combination, then measure.

    ``runner`` optionally executes the 11 cascade cells through a
    :class:`repro.runner.GridRunner`; each cell is a full max-n binary
    search plus measurement, so this is the sweep where parallel workers
    pay off most.
    """
    combos = list(combinations) if combinations is not None else vulnerable_combinations()
    if runner is not None:
        from repro.core.obr import obr_grid

        grid_result = runner.run(obr_grid(combos, resource_size=resource_size))
        grid_result.values()  # propagate the first cell failure, like serial
        return table5_rows_from_results(
            grid_result.value_by_key(), combos, resource_size
        )
    results = {
        (fcdn, bcdn): ObrAttack(fcdn, bcdn, resource_size=resource_size).run()
        for fcdn, bcdn in combos
    }
    return table5_rows_from_results(results, combos, resource_size)


def table5_rows_from_results(
    results: Dict[Tuple[str, str], object],
    combinations: Sequence[Tuple[str, str]],
    resource_size: int = 1024,
) -> List[Table5Row]:
    """Assemble Table V rows from (fcdn, bcdn) -> ObrResult mappings."""
    rows = []
    for fcdn, bcdn in combinations:
        result = results[(fcdn, bcdn)]
        prefix = ObrAttack(fcdn, bcdn, resource_size=resource_size).range_value(3)
        rows.append(
            Table5Row(
                fcdn=fcdn,
                bcdn=bcdn,
                exploited_case_prefix=prefix + ",...",
                max_n=result.overlap_count,
                bcdn_origin_traffic=result.bcdn_origin_traffic,
                fcdn_bcdn_traffic=result.fcdn_bcdn_traffic,
                factor=result.amplification,
            )
        )
    return rows
