"""One-call regeneration of the full paper-reproduction report.

:func:`generate_full_report` runs every experiment and writes each
artifact twice — aligned plain text and GitHub markdown — into a target
directory.  The benchmarks do the same piecemeal (with assertions); this
is the convenience surface for a downstream user who wants the whole
record in one command::

    from repro.reporting.summary import generate_full_report
    generate_full_report("report/")
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.core.feasibility import survey
from repro.reporting.figures import fig7_series
from repro.reporting.paper_values import PAPER_TABLE4_FACTORS, PAPER_TABLE5
from repro.reporting.render import render_markdown_table, render_table
from repro.reporting.tables import (
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)

MB = 1 << 20


def _write(
    output_dir: Path, stem: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> List[Path]:
    rows = list(rows)
    text_path = output_dir / f"{stem}.txt"
    markdown_path = output_dir / f"{stem}.md"
    text_path.write_text(render_table(headers, rows) + "\n", encoding="utf-8")
    markdown_path.write_text(
        render_markdown_table(headers, rows) + "\n", encoding="utf-8"
    )
    return [text_path, markdown_path]


def generate_full_report(
    output_dir: Union[str, Path],
    quick: bool = False,
) -> List[Path]:
    """Regenerate every table/figure; returns the files written.

    ``quick=True`` trims the sweeps (Table IV at 1 MB only, Fig 7 at
    three m values) for smoke runs; the default reproduces the paper's
    full parameter grid.
    """
    target = Path(output_dir)
    target.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    feasibility = survey(file_size=16 * 1024)
    written += _write(
        target,
        "table1_sbr_feasibility",
        ["CDN", "Vulnerable", "Format -> Policy"],
        [
            [
                row.display_name,
                "yes" if row.vulnerable else "no",
                "; ".join(f"{f} ({p})" for f, p in row.vulnerable_formats),
            ]
            for row in table1_rows(feasibility=feasibility)
        ],
    )
    written += _write(
        target,
        "table2_obr_forwarding",
        ["CDN", "Lazy Multi-Range Formats"],
        [
            [row.display_name, "; ".join(row.lazy_formats)]
            for row in table2_rows(feasibility=feasibility)
        ],
    )
    written += _write(
        target,
        "table3_obr_replying",
        ["CDN", "Response Format"],
        [
            [
                row.display_name,
                "n-part response (overlapping)"
                + (f", n <= {row.part_limit}" if row.part_limit else ""),
            ]
            for row in table3_rows(feasibility=feasibility)
        ],
    )

    sizes = (1 * MB,) if quick else (1 * MB, 10 * MB, 25 * MB)
    written += _write(
        target,
        "table4_sbr_factors",
        ["CDN", "Exploited Case"] + [f"{s // MB}MB (paper)" for s in sizes],
        [
            [
                row.display_name,
                " & ".join(row.exploited_cases),
                *(
                    f"{row.factors[s]:.0f} ({PAPER_TABLE4_FACTORS[row.vendor][s]})"
                    for s in sizes
                ),
            ]
            for row in table4_rows(sizes=sizes)
        ],
    )

    combos = [("cloudflare", "akamai"), ("cdn77", "azure")] if quick else None
    written += _write(
        target,
        "table5_obr_factors",
        ["FCDN", "BCDN", "Max n (paper)", "BCDN->FCDN B (paper)", "Factor (paper)"],
        [
            [
                row.fcdn,
                row.bcdn,
                f"{row.max_n} ({PAPER_TABLE5[(row.fcdn, row.bcdn)][0]})",
                f"{row.fcdn_bcdn_traffic} ({PAPER_TABLE5[(row.fcdn, row.bcdn)][2]})",
                f"{row.factor:.1f} ({PAPER_TABLE5[(row.fcdn, row.bcdn)][3]})",
            ]
            for row in table5_rows(combinations=combos)
        ],
    )

    ms: Sequence[int] = (2, 12, 15) if quick else tuple(range(1, 16))
    written += _write(
        target,
        "fig7_bandwidth",
        ["m", "steady origin Mbps", "peak client Kbps", "saturated"],
        [
            [
                result.m,
                f"{result.steady_origin_mbps:.1f}",
                f"{result.peak_client_kbps:.1f}",
                "yes" if result.saturated else "no",
            ]
            for result in fig7_series(ms=ms)
        ],
    )
    return written
