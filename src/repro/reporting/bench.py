"""Schema-versioned benchmark persistence (``BENCH_runall.json``).

Speed claims need a trajectory, not an anecdote: every ``repro run-all``
(and the run-all benchmark in ``benchmarks/bench_micro_substrate.py``)
writes a :class:`BenchReport` JSON file recording wall clock, cells per
second, the fast-path hit rate, and a per-phase breakdown.  CI uploads
the file as an artifact and gates on it against the baseline committed
at the repo root, so a PR that silently regresses the fast path fails
before it merges.

The file is versioned (:data:`BENCH_SCHEMA_VERSION`) and loaded through
a typed parser that rejects unknown versions and malformed payloads —
a CI gate comparing two files it merely *hopes* are shaped right would
rot the first time the shape changes.

Phase vocabulary (written by :func:`repro.runner.runall.run_all`):

* ``fastpath`` — planning + closed-form answering of eligible cells;
* ``grid`` — wire-level simulation of the residual cells;
* ``validate`` — sampled re-simulation of fast answers;
* ``static`` — the Table VII recommendation derivation;
* ``measure`` (derived here) — everything spent answering SBR/OBR/CCFC
  measurement cells: ``fastpath + validate`` plus the per-cell seconds
  of simulated measurement cells.  This is the basis of the CI speedup
  gate, because it compares like with like — the Fig 7 flood cells are
  time-stepped bandwidth simulations outside the fast path's scope and
  cost the same in both modes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import ReproError
from repro.runner.runall import RunAllReport

#: Current on-disk schema version; bump on any shape change.
#: Version 2: the run-all grid gained CCFC cells, so cell counts,
#: phase totals, and the ``measure`` derivation all shifted — files
#: written by version-1 builds are not comparable and are rejected.
BENCH_SCHEMA_VERSION = 2

#: The canonical file name, both in run-all output dirs and at the repo
#: root (the committed CI baseline).
BENCH_FILENAME = "BENCH_runall.json"

#: Experiment kinds whose cell seconds count toward the ``measure``
#: phase (the cells the fast path may answer).
MEASURE_EXPERIMENTS = ("sbr", "obr", "ccfc", "sbr-faults")


class BenchSchemaError(ReproError):
    """A benchmark file failed schema or type validation."""


@dataclass(frozen=True)
class BenchFastPath:
    """Fast-path counters persisted alongside the timings."""

    answered: int
    refused: int
    ineligible: int
    validated: int
    calibration_runs: int
    hit_rate: float


@dataclass(frozen=True)
class BenchReport:
    """One benchmark observation, ready to serialize."""

    schema_version: int
    #: What was measured, e.g. ``run-all-quick`` / ``run-all-quick-exact``.
    label: str
    #: ``fast`` (default path) or ``exact`` (sim-only reference).
    mode: str
    #: End-to-end wall seconds for the run being described.
    wall_s: float
    cell_count: int
    cells_per_s: float
    workers: int
    #: Phase name -> wall seconds (see the module docstring vocabulary).
    phases: Dict[str, float] = field(default_factory=dict)
    fastpath: Optional[BenchFastPath] = None

    @property
    def measure_s(self) -> float:
        """Seconds spent answering measurement cells (CI gate basis)."""
        return self.phases.get("measure", 0.0)

    @property
    def hit_rate(self) -> float:
        return self.fastpath.hit_rate if self.fastpath is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        if target.is_dir():
            target = target / BENCH_FILENAME
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target


def _require(payload: Mapping[str, Any], key: str, kind: type) -> Any:
    if key not in payload:
        raise BenchSchemaError(f"benchmark payload is missing {key!r}")
    value = payload[key]
    # bool is an int subclass; an accidental true/false in a count field
    # should fail, not pass.
    if isinstance(value, bool) or not isinstance(value, kind):
        if kind is float and isinstance(value, int):
            return float(value)
        raise BenchSchemaError(
            f"benchmark field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def bench_from_dict(payload: Mapping[str, Any]) -> BenchReport:
    """Validate and type a raw JSON payload into a :class:`BenchReport`."""
    if not isinstance(payload, Mapping):
        raise BenchSchemaError(
            f"benchmark payload must be an object, got {type(payload).__name__}"
        )
    version = _require(payload, "schema_version", int)
    if version != BENCH_SCHEMA_VERSION:
        raise BenchSchemaError(
            f"unknown benchmark schema version {version} "
            f"(this build reads version {BENCH_SCHEMA_VERSION})"
        )
    raw_phases = payload.get("phases", {})
    if not isinstance(raw_phases, Mapping):
        raise BenchSchemaError("benchmark field 'phases' must be an object")
    phases: Dict[str, float] = {}
    for name, seconds in raw_phases.items():
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
            raise BenchSchemaError(f"phase {name!r} must be a number")
        phases[str(name)] = float(seconds)
    raw_fastpath = payload.get("fastpath")
    fastpath: Optional[BenchFastPath] = None
    if raw_fastpath is not None:
        if not isinstance(raw_fastpath, Mapping):
            raise BenchSchemaError("benchmark field 'fastpath' must be an object")
        fastpath = BenchFastPath(
            answered=_require(raw_fastpath, "answered", int),
            refused=_require(raw_fastpath, "refused", int),
            ineligible=_require(raw_fastpath, "ineligible", int),
            validated=_require(raw_fastpath, "validated", int),
            calibration_runs=_require(raw_fastpath, "calibration_runs", int),
            hit_rate=_require(raw_fastpath, "hit_rate", float),
        )
    return BenchReport(
        schema_version=version,
        label=_require(payload, "label", str),
        mode=_require(payload, "mode", str),
        wall_s=_require(payload, "wall_s", float),
        cell_count=_require(payload, "cell_count", int),
        cells_per_s=_require(payload, "cells_per_s", float),
        workers=_require(payload, "workers", int),
        phases=phases,
        fastpath=fastpath,
    )


def load_bench(path: Union[str, Path]) -> BenchReport:
    """Load and validate a benchmark file."""
    source = Path(path)
    if source.is_dir():
        source = source / BENCH_FILENAME
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except ValueError as error:
        raise BenchSchemaError(f"benchmark file {source} is not JSON: {error}")
    return bench_from_dict(payload)


def bench_from_runall(
    report: RunAllReport, label: str, wall_s: Optional[float] = None
) -> BenchReport:
    """Build the persisted observation from one finished run-all report.

    ``wall_s`` is the caller-measured end-to-end wall clock; it defaults
    to the sum of the recorded phases (answering + static derivation),
    which excludes process startup and artifact writing.
    """
    phases = dict(report.phase_seconds)
    measure = phases.get("fastpath", 0.0) + phases.get("validate", 0.0)
    for name in MEASURE_EXPERIMENTS:
        timing = report.timing_by_experiment.get(name)
        if timing is not None:
            total = timing.total_s
            measure += total
    phases["measure"] = measure
    wall = wall_s if wall_s is not None else sum(report.phase_seconds.values())
    stats = report.fastpath
    return BenchReport(
        schema_version=BENCH_SCHEMA_VERSION,
        label=label,
        mode="fast" if stats is not None else "exact",
        wall_s=wall,
        cell_count=report.cell_count,
        cells_per_s=(report.cell_count / wall) if wall > 0 else 0.0,
        workers=report.workers,
        phases=phases,
        fastpath=(
            BenchFastPath(
                answered=stats.answered,
                refused=stats.refused,
                ineligible=stats.ineligible,
                validated=stats.validated,
                calibration_runs=stats.calibration_runs,
                hit_rate=stats.hit_rate,
            )
            if stats is not None
            else None
        ),
    )
