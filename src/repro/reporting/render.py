"""Plain-text rendering for tables and series."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table.

    >>> print(render_table(["a", "b"], [[1, "xy"]]))
    a | b
    --+---
    1 | xy
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "-+-".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavored markdown table.

    >>> print(render_markdown_table(["a", "b"], [[1, "x|y"]]))
    | a | b |
    |---|---|
    | 1 | x\\|y |
    """
    def escape(cell: object) -> str:
        return str(cell).replace("|", "\\|")

    lines = [
        "| " + " | ".join(escape(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        cells = [escape(cell) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a crude one-line plot of ``values`` scaled to ``width``.

    Useful for eyeballing Fig 7 series in terminal output.
    """
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    top = max(values) or 1.0
    picked = list(values)
    if len(picked) > width:
        stride = len(picked) / width
        picked = [picked[int(i * stride)] for i in range(width)]
    return "".join(blocks[min(8, int(v / top * 8))] for v in picked)


def format_bytes(count: float) -> str:
    """Human-readable byte count (binary units)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.2f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Human-readable wall time: ``840us``, ``12ms``, ``3.42s``, ``2m08s``."""
    if seconds < 0:
        raise ValueError(f"duration must be >= 0, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:02.0f}s"
