"""Regeneration of the paper's tables and figures.

* :mod:`repro.reporting.tables` — Tables I–V as structured rows.
* :mod:`repro.reporting.figures` — Fig 6 (SBR curves) and Fig 7
  (bandwidth saturation) as numeric series.
* :mod:`repro.reporting.render` — plain-text table rendering.
* :mod:`repro.reporting.paper_values` — the numbers the paper printed,
  for side-by-side comparison and tolerance checks.
"""

from __future__ import annotations

from repro.reporting.figures import Fig6Series, fig6_series, fig7_series
from repro.reporting.render import render_table
from repro.reporting.tables import (
    Table1Row,
    Table2Row,
    Table3Row,
    Table4Row,
    Table5Row,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)

__all__ = [
    "Fig6Series",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "Table5Row",
    "fig6_series",
    "fig7_series",
    "render_table",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
]
