"""Static analysis: amplification bounds and repo invariants.

Two independent passes (ISSUE 3):

* **Config analysis** — :func:`~repro.analysis.report.analyze_vendor_matrix`
  and :func:`~repro.analysis.report.analyze_deployment` classify vendors
  and cascades as SBR/OBR-vulnerable straight from their
  ``forward_decision`` tables, reply behaviors, and header limits, and
  compute closed-form worst-case amplification bounds (paper §IV) without
  simulating a single wire byte.
* **Code analysis** — :mod:`repro.analysis.lint` is an AST linter that
  enforces the repo's wire-accounting and typing invariants; it backs the
  ``repro lint`` CLI command and a pytest guard.
* **Determinism analysis** — :mod:`repro.analysis.callgraph` builds a
  whole-program call graph over ``src/repro`` and
  :mod:`repro.analysis.purity` propagates nondeterminism effects over it
  to fixpoint, reporting any call path from a nondeterminism source
  (wall clock, global RNG, ``id()``, env reads, set iteration) to a
  determinism sink (checkpoint journal, canonical run-record
  serialization, exporters, artifact writers) that is not laundered
  through a declared facade.  Backs ``repro purity`` and
  ``repro lint --deep``.
* **Defense recommendations** — :func:`~repro.analysis.recommend.recommend`
  turns the findings into the cheapest sufficient mitigation per
  vulnerable vendor/cascade, with residual bounds and dynamic
  cross-validation (``repro recommend``).
"""

from __future__ import annotations

from repro.analysis.bounds import (
    CcfcBound,
    ObrBound,
    ProfileFactory,
    SbrBound,
    ccfc_bound,
    obr_bound,
    profile_ccfc_bound,
    profile_sbr_bound,
    sbr_bound,
    static_max_n,
)
from repro.analysis.classify import (
    CascadeClassification,
    CcfcClassification,
    ObrBackendFacts,
    ProbeDecision,
    SbrClassification,
    classify_cascade,
    classify_ccfc,
    classify_obr_backend,
    classify_obr_frontend,
    classify_sbr,
)
from repro.analysis.recommend import (
    MitigationOption,
    MitigationSpec,
    Recommendation,
    RecommendationReport,
    VerificationCheck,
    recommend,
    render_recommendations_table,
    verify_recommendations,
)
from repro.analysis.report import (
    AnalysisReport,
    Finding,
    analyze_deployment,
    analyze_vendor_matrix,
    render_findings_table,
)

__all__ = [
    "AnalysisReport",
    "CascadeClassification",
    "CcfcBound",
    "CcfcClassification",
    "Finding",
    "MitigationOption",
    "MitigationSpec",
    "ObrBackendFacts",
    "ObrBound",
    "ProbeDecision",
    "ProfileFactory",
    "Recommendation",
    "RecommendationReport",
    "SbrBound",
    "SbrClassification",
    "VerificationCheck",
    "analyze_deployment",
    "analyze_vendor_matrix",
    "ccfc_bound",
    "classify_cascade",
    "classify_ccfc",
    "classify_obr_backend",
    "classify_obr_frontend",
    "classify_sbr",
    "obr_bound",
    "profile_ccfc_bound",
    "profile_sbr_bound",
    "recommend",
    "render_findings_table",
    "render_recommendations_table",
    "sbr_bound",
    "static_max_n",
    "verify_recommendations",
]
