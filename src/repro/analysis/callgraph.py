"""Whole-program call graph over the ``repro`` package.

The determinism analyzer (:mod:`repro.analysis.purity`) needs to answer
"can this serialization sink transitively execute that wall-clock read?"
— a question about the *call graph*, not about any single module.  This
module builds that graph statically, in three passes:

1. **Index** — every module under the root is parsed once; its import
   table (``import time``, ``from repro.x import y as z``, relative
   forms), module-level functions, classes (methods, resolved base
   names, and instance-attribute types harvested from ``self.x =
   ClassName(...)`` assignments and annotated class fields) go into a
   per-module symbol table.
2. **Resolve** — every function body is walked and each call site is
   resolved to a dotted qualname: direct names through the import
   table, ``self.method()`` through the enclosing class and its known
   bases, and attribute calls through a small expression typer
   (parameter annotations, ``x = ClassName(...)`` locals, instance
   attribute types, and known return annotations), so
   ``RunLedger(path).append(record)`` resolves to
   ``repro.obs.runlog.RunLedger.append`` without executing anything.
   Calls into stdlib or builtins resolve to their external dotted names
   (``time.time``, ``builtins.id``) and become graph leaves.
3. **Dispatch** — name-based registries break static edges (the grid
   executor invokes cell functions via
   :func:`repro.runner.experiments.cell_function`), so module-level
   ``register("name", fn)`` calls are collected per module and
   declared dispatchers receive synthetic edges to every registered
   function (``@registered:<module>`` in the dispatch table).

Besides call sites, each function node records the local facts the
purity pass classifies as nondeterminism sources that are not calls:
iteration over set-typed expressions outside an order-insensitive
consumer, ``os.environ`` subscript reads, and true division landing in
``*_bytes``/``*_size``/``*_traffic`` bindings.

Nested functions and lambdas are inlined into their enclosing
function's node: their calls and facts accrue to the parent, which is
the sound over-approximation for taint purposes (the closure can run
whenever the parent does).
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.errors import ReproError

#: Annotation heads that type a value as an unordered set.
_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)

#: Order-insensitive consumers: iterating a set *inside* these is fine
#: because the result does not depend on iteration order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset"}
)

#: Consumers that materialize iteration order into an ordered value.
_ORDER_MATERIALIZING = frozenset({"list", "tuple"})

#: Binding-name suffixes that denote byte counts (mirrors the lint
#: rule ``float-byte-arith``).
_BYTE_NAME_SUFFIXES = ("_bytes", "_size", "_traffic")


class CallGraphError(ReproError):
    """The call-graph builder was pointed at an unusable tree."""


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge out of a function body."""

    callee: str
    line: int


@dataclass(frozen=True)
class FunctionNode:
    """One defined function or method and everything it does."""

    qualname: str
    module: str
    rel_path: str
    line: int
    calls: Tuple[CallSite, ...]
    #: Lines iterating a set-typed expression into an ordered consumer.
    set_iterations: Tuple[int, ...] = ()
    #: Lines reading ``os.environ`` via subscript.
    env_reads: Tuple[int, ...] = ()
    #: Lines where true division lands in a byte-count binding.
    float_byte_divisions: Tuple[int, ...] = ()


class CallGraph:
    """The resolved whole-program graph: nodes plus registry edges."""

    def __init__(
        self,
        functions: Mapping[str, FunctionNode],
        registrations: Mapping[str, Tuple[str, ...]],
        module_count: int,
    ) -> None:
        self.functions: Dict[str, FunctionNode] = dict(functions)
        #: Module qualname -> qualnames registered via ``register(...)``.
        self.registrations: Dict[str, Tuple[str, ...]] = dict(registrations)
        self.module_count = module_count

    def node(self, qualname: str) -> FunctionNode:
        try:
            return self.functions[qualname]
        except KeyError:
            raise CallGraphError(f"no function {qualname!r} in the call graph")

    def __contains__(self, qualname: object) -> bool:
        return qualname in self.functions

    def __len__(self) -> int:
        return len(self.functions)

    @property
    def edge_count(self) -> int:
        return sum(len(node.calls) for node in self.functions.values())

    def internal_callees(self, qualname: str) -> Tuple[CallSite, ...]:
        """Call sites whose callee is another defined function."""
        return tuple(
            site for site in self.node(qualname).calls if site.callee in self.functions
        )

    def callers_of(self, qualname: str) -> Tuple[str, ...]:
        """Defined functions with an edge to ``qualname``, sorted."""
        return tuple(
            sorted(
                caller
                for caller, node in self.functions.items()
                if any(site.callee == qualname for site in node.calls)
            )
        )


# ---------------------------------------------------------------------------
# Pass 1: per-module indexing
# ---------------------------------------------------------------------------

@dataclass
class _ClassIndex:
    qualname: str
    #: Base-class names resolved through the module scope (dotted).
    bases: Tuple[str, ...]
    #: Method name -> definition line.
    methods: Dict[str, int] = field(default_factory=dict)
    #: Attribute name -> dotted type name (``self.x = T(...)`` or ``x: T``).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class _ModuleIndex:
    name: str
    rel_path: str
    tree: ast.Module
    #: Local alias -> dotted target (``z`` -> ``repro.runner.grid.ExperimentCell``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-level function name -> definition node.
    functions: Dict[str, Union[ast.FunctionDef, ast.AsyncFunctionDef]] = field(
        default_factory=dict
    )
    classes: Dict[str, _ClassIndex] = field(default_factory=dict)
    #: Qualnames registered through module-level ``register("k", fn)``.
    registrations: List[str] = field(default_factory=list)

    def scope_resolve(self, name: str) -> Optional[str]:
        """Resolve a bare name in module scope to a dotted qualname."""
        if name in self.imports:
            return self.imports[name]
        if name in self.classes:
            return f"{self.name}.{name}"
        if name in self.functions:
            return f"{self.name}.{name}"
        return None


def _module_name(rel: Path, package: str) -> str:
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts) if parts else package


def _relative_base(module: str, is_package: bool, level: int) -> str:
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    # level 1 is the containing package itself; each extra level climbs.
    climb = level - 1
    if climb >= len(parts):
        return parts[0] if parts else module
    return ".".join(parts[: len(parts) - climb])


def _index_imports(index: _ModuleIndex, is_package: bool) -> None:
    for stmt in ast.walk(index.tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname is not None:
                    index.imports[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``.
                    root = alias.name.split(".", 1)[0]
                    index.imports[root] = root
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None:
                base = _relative_base(index.name, is_package, stmt.level or 1)
            elif stmt.level:
                prefix = _relative_base(index.name, is_package, stmt.level)
                base = f"{prefix}.{stmt.module}"
            else:
                base = stmt.module
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname if alias.asname is not None else alias.name
                index.imports[bound] = f"{base}.{alias.name}"


#: Annotation wrappers to unwrap when looking for the instance type.
_WRAPPER_ANNOTATIONS = frozenset(
    {"Optional", "Union", "Final", "ClassVar", "Annotated"}
)


def _annotation_classes(node: Optional[ast.expr]) -> List[str]:
    """Dotted names this annotation can denote an *instance* of.

    Unwraps ``Optional``/``Union``/``X | None``/quoted forms; does NOT
    descend into container type parameters (``Dict[str, Link]`` yields
    ``["Dict"]``, not ``Link`` — the value is a dict, not a link).
    """
    if node is None:
        return []
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                return []
            return _annotation_classes(parsed.body)
        return []  # e.g. the ``None`` half of ``X | None``
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = _dotted_name(node)
        return [dotted] if dotted is not None else []
    if isinstance(node, ast.Subscript):
        head = _dotted_name(node.value)
        if head is None:
            return []
        if head.split(".")[-1] in _WRAPPER_ANNOTATIONS:
            return _annotation_classes(node.slice)
        return [head]
    if isinstance(node, ast.Tuple):
        out: List[str] = []
        for elt in node.elts:
            out.extend(_annotation_classes(elt))
        return out
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_classes(node.left) + _annotation_classes(node.right)
    return []


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute/name chain to its dotted string, else None."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _scope_dotted(index: _ModuleIndex, dotted: str) -> str:
    """Resolve a dotted name's head through the module scope."""
    head, _, rest = dotted.partition(".")
    base = index.scope_resolve(head)
    if base is None:
        return dotted
    return f"{base}.{rest}" if rest else base


def _index_class(index: _ModuleIndex, node: ast.ClassDef) -> None:
    info = _ClassIndex(
        qualname=f"{index.name}.{node.name}",
        bases=tuple(
            _scope_dotted(index, dotted)
            for dotted in (_dotted_name(base) for base in node.bases)
            if dotted is not None
        ),
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = stmt.lineno
            for inner in ast.walk(stmt):
                if (
                    isinstance(inner, ast.Assign)
                    and len(inner.targets) == 1
                    and isinstance(inner.targets[0], ast.Attribute)
                    and isinstance(inner.targets[0].value, ast.Name)
                    and inner.targets[0].value.id == "self"
                    and isinstance(inner.value, ast.Call)
                ):
                    typed = _dotted_name(inner.value.func)
                    if typed is not None:
                        info.attr_types.setdefault(
                            inner.targets[0].attr, _scope_dotted(index, typed)
                        )
                elif (
                    isinstance(inner, ast.AnnAssign)
                    and isinstance(inner.target, ast.Attribute)
                    and isinstance(inner.target.value, ast.Name)
                    and inner.target.value.id == "self"
                ):
                    heads = _annotation_classes(inner.annotation)
                    if heads:
                        info.attr_types.setdefault(
                            inner.target.attr, _scope_dotted(index, heads[0])
                        )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            # Class-level annotated fields (dataclasses included).
            heads = _annotation_classes(stmt.annotation)
            if heads:
                info.attr_types.setdefault(
                    stmt.target.id, _scope_dotted(index, heads[0])
                )
    index.classes[node.name] = info


def _index_registrations(index: _ModuleIndex) -> None:
    for stmt in index.tree.body:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "register"
            and len(stmt.value.args) == 2
            and isinstance(stmt.value.args[1], ast.Name)
        ):
            resolved = index.scope_resolve(stmt.value.args[1].id)
            if resolved is not None:
                index.registrations.append(resolved)


def _index_module(path: Path, root: Path, package: str) -> _ModuleIndex:
    rel = path.relative_to(root)
    name = _module_name(rel, package)
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as error:
        raise CallGraphError(f"cannot parse {rel.as_posix()}: {error}")
    index = _ModuleIndex(name=name, rel_path=rel.as_posix(), tree=tree)
    _index_imports(index, is_package=rel.name == "__init__.py")
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            _index_class(index, stmt)
    _index_registrations(index)
    return index


# ---------------------------------------------------------------------------
# Pass 2: per-function call resolution
# ---------------------------------------------------------------------------

class _FunctionWalker(ast.NodeVisitor):
    """Resolves one function body's calls and nondeterminism facts."""

    def __init__(
        self,
        module: _ModuleIndex,
        classes: Mapping[str, _ClassIndex],
        return_types: Mapping[str, str],
        class_name: Optional[str],
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    ) -> None:
        self.module = module
        self.classes = classes
        self.return_types = return_types
        self.class_name = class_name
        self.calls: List[CallSite] = []
        self.set_iterations: List[int] = []
        self.env_reads: List[int] = []
        self.float_byte_divisions: List[int] = []
        #: Local name -> dotted type name.
        self.var_types: Dict[str, str] = {}
        #: Local names bound to set-typed values.
        self.set_vars: Set[str] = set()
        self._bind_parameters(func)

    # -- typing helpers ------------------------------------------------

    def _bind_parameters(
        self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        args = func.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            heads = _annotation_classes(arg.annotation)
            for head in heads:
                if head.split(".")[-1] in _SET_ANNOTATIONS:
                    self.set_vars.add(arg.arg)
                resolved = self._resolve_type_name(head)
                if resolved is not None:
                    self.var_types.setdefault(arg.arg, resolved)
                    break

    def _resolve_type_name(self, dotted: str) -> Optional[str]:
        """A dotted annotation head to a known class qualname."""
        head, _, rest = dotted.partition(".")
        base = self.module.scope_resolve(head)
        candidate = (base + ("." + rest if rest else "")) if base else dotted
        if candidate in self.classes:
            return candidate
        return None

    def _class_attr_type(self, class_qual: str, attr: str) -> Optional[str]:
        info = self._class_info(class_qual)
        seen: Set[str] = set()
        while info is not None and info.qualname not in seen:
            seen.add(info.qualname)
            if attr in info.attr_types:
                return info.attr_types[attr]
            info = self._first_known_base(info)
        return None

    def _class_info(self, qualname: str) -> Optional[_ClassIndex]:
        return self.classes.get(qualname)

    def _first_known_base(self, info: _ClassIndex) -> Optional[_ClassIndex]:
        # Bases are stored pre-resolved in their defining module's scope.
        for base in info.bases:
            if base in self.classes:
                return self.classes[base]
        return None

    def _method_owner(self, class_qual: str, method: str) -> Optional[str]:
        """The class (self or ancestor) defining ``method``."""
        info = self._class_info(class_qual)
        seen: Set[str] = set()
        while info is not None and info.qualname not in seen:
            seen.add(info.qualname)
            if method in info.methods or method in info.attr_types:
                return info.qualname
            info = self._first_known_base(info)
        return None

    def _type_of(self, node: ast.expr) -> Optional[str]:
        """Dotted type name of an expression, where statically knowable."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.class_name is not None:
                return f"{self.module.name}.{self.class_name}"
            return self.var_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base_type = self._type_of(node.value)
            if base_type is not None and base_type in self.classes:
                return self._class_attr_type(base_type, node.attr)
            return None
        if isinstance(node, ast.Call):
            callee = self._resolve_callee(node.func)
            if callee is None:
                return None
            if callee in self.classes:
                return callee
            # Known function: use its return annotation when it names
            # a known class.  Stored values are pre-resolved; bare
            # non-class names ("Dict", "int") type nothing.
            returns = self.return_types.get(callee)
            if returns is not None:
                if returns in self.classes or "." in returns:
                    return returns
                return None
            # External constructor-ish dotted name (``random.Random``).
            tail = callee.split(".")[-1]
            if tail[:1].isupper():
                return callee
            return None
        return None

    # -- call resolution -----------------------------------------------

    def _resolve_callee(self, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            resolved = self.module.scope_resolve(func.id)
            if resolved is not None:
                return resolved
            if hasattr(builtins, func.id):
                return f"builtins.{func.id}"
            return None
        if isinstance(func, ast.Attribute):
            value_type = self._type_of(func.value)
            if value_type is not None:
                if value_type in self.classes:
                    owner = self._method_owner(value_type, func.attr)
                    return f"{owner or value_type}.{func.attr}"
                return f"{value_type}.{func.attr}"
            dotted = _dotted_name(func)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                base = self.module.scope_resolve(head)
                if base is not None:
                    full = f"{base}.{rest}" if rest else base
                    # ``Class.method`` through an imported class name.
                    if base in self.classes and rest:
                        owner = self._method_owner(base, rest.split(".")[0])
                        if owner is not None:
                            return f"{owner}.{rest}"
                    return full
            return None
        return None

    def visit_Call(self, node: ast.Call) -> None:
        # ``(a if cond else b)()`` can invoke either branch; both edges.
        candidates = (
            [node.func.body, node.func.orelse]
            if isinstance(node.func, ast.IfExp)
            else [node.func]
        )
        for candidate in candidates:
            callee = self._resolve_callee(candidate)
            if callee is not None:
                self.calls.append(CallSite(callee=callee, line=node.lineno))
        # ``list(setexpr)`` / ``tuple(setexpr)`` / ``sep.join(setexpr)``
        # materialize set order into an ordered value.
        materializes = (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_MATERIALIZING
        ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "join")
        if materializes and node.args and self._is_set_expr(node.args[0]):
            self.set_iterations.append(node.lineno)
        # A comprehension fed straight into an order-insensitive reducer
        # (``sum(x for x in some_set)``) cannot leak iteration order.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE
        ):
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    for generator in arg.generators:
                        generator._order_insensitive = True  # type: ignore[attr-defined]
        self.generic_visit(node)

    # -- set-typed expression detection --------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _note_set_binding(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if value is None or not isinstance(target, ast.Name):
            return
        if self._is_set_expr(value):
            self.set_vars.add(target.id)
        elif target.id in self.set_vars:
            self.set_vars.discard(target.id)

    def _note_type_binding(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if value is None or not isinstance(target, ast.Name):
            return
        typed = self._type_of(value)
        if typed is not None:
            self.var_types[target.id] = typed

    def _check_iteration(self, iter_expr: ast.expr) -> None:
        if self._is_set_expr(iter_expr):
            self.set_iterations.append(iter_expr.lineno)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if not getattr(node, "_order_insensitive", False):
            self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- assignments: type/set tracking + float-byte fact ---------------

    @staticmethod
    def _byte_named(target: ast.expr) -> bool:
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        return name is not None and name.endswith(_BYTE_NAME_SUFFIXES)

    @staticmethod
    def _contains_true_div(node: ast.expr) -> bool:
        return any(
            isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)
            for sub in ast.walk(node)
        )

    def _check_float_byte(
        self, targets: Sequence[ast.expr], value: Optional[ast.expr], line: int
    ) -> None:
        if value is None or not self._contains_true_div(value):
            return
        if any(self._byte_named(target) for target in targets):
            self.float_byte_divisions.append(line)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_set_binding(target, node.value)
            self._note_type_binding(target, node.value)
        self._check_float_byte(node.targets, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        heads = _annotation_classes(node.annotation)
        if isinstance(node.target, ast.Name):
            if any(h.split(".")[-1] in _SET_ANNOTATIONS for h in heads):
                self.set_vars.add(node.target.id)
            for head in heads:
                resolved = self._resolve_type_name(head)
                if resolved is not None:
                    self.var_types[node.target.id] = resolved
                    break
            self._note_set_binding(node.target, node.value)
            self._note_type_binding(node.target, node.value)
        self._check_float_byte([node.target], node.value, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Div) and self._byte_named(node.target):
            self.float_byte_divisions.append(node.lineno)
        else:
            self._check_float_byte([node.target], node.value, node.lineno)
        self.generic_visit(node)

    # -- env reads ------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        dotted = _dotted_name(node.value)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            base = self.module.scope_resolve(head) or head
            full = f"{base}.{rest}" if rest else base
            if full == "os.environ" and isinstance(node.ctx, ast.Load):
                self.env_reads.append(node.lineno)
        self.generic_visit(node)


def _collect_return_types(modules: Sequence[_ModuleIndex]) -> Dict[str, str]:
    returns: Dict[str, str] = {}
    for module in modules:
        for name, func in module.functions.items():
            heads = _annotation_classes(func.returns)
            if heads:
                returns[f"{module.name}.{name}"] = _scope_dotted(module, heads[0])
        for cls_name, info in module.classes.items():
            cls_node = _find_class_node(module.tree, cls_name)
            if cls_node is None:
                continue
            for stmt in cls_node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    heads = _annotation_classes(stmt.returns)
                    if heads:
                        returns[f"{info.qualname}.{stmt.name}"] = _scope_dotted(
                            module, heads[0]
                        )
    return returns


def _find_class_node(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def _walk_function(
    module: _ModuleIndex,
    classes: Mapping[str, _ClassIndex],
    return_types: Mapping[str, str],
    class_name: Optional[str],
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> FunctionNode:
    walker = _FunctionWalker(module, classes, return_types, class_name, func)
    for stmt in func.body:
        walker.visit(stmt)
    owner = f"{module.name}.{class_name}." if class_name else f"{module.name}."
    return FunctionNode(
        qualname=f"{owner}{func.name}",
        module=module.name,
        rel_path=module.rel_path,
        line=func.lineno,
        calls=tuple(walker.calls),
        set_iterations=tuple(walker.set_iterations),
        env_reads=tuple(walker.env_reads),
        float_byte_divisions=tuple(walker.float_byte_divisions),
    )


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def build_callgraph(
    root: Optional[Union[str, Path]] = None,
    package: str = "repro",
    dispatch: Optional[Mapping[str, Sequence[str]]] = None,
) -> CallGraph:
    """Build the whole-program call graph under ``root``.

    ``dispatch`` adds synthetic edges for name-based registries: each
    key is a dispatcher qualname, each value a list of callee qualnames
    or ``@registered:<module>`` tokens expanding to that module's
    collected ``register(...)`` calls.
    """
    anchor = Path(root) if root is not None else default_root()
    if not anchor.is_dir():
        raise CallGraphError(f"call-graph root {anchor} is not a directory")
    modules = [
        _index_module(path, anchor, package)
        for path in sorted(anchor.rglob("*.py"))
    ]
    classes: Dict[str, _ClassIndex] = {}
    for module in modules:
        for info in module.classes.values():
            classes[info.qualname] = info
    return_types = _collect_return_types(modules)

    functions: Dict[str, FunctionNode] = {}
    registrations: Dict[str, Tuple[str, ...]] = {}
    for module in modules:
        if module.registrations:
            registrations[module.name] = tuple(module.registrations)
        for func in module.functions.values():
            node = _walk_function(module, classes, return_types, None, func)
            functions[node.qualname] = node
        for cls_name in module.classes:
            cls_node = _find_class_node(module.tree, cls_name)
            if cls_node is None:
                continue
            for stmt in cls_node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    node = _walk_function(
                        module, classes, return_types, cls_name, stmt
                    )
                    functions[node.qualname] = node

    for dispatcher, targets in (dispatch or {}).items():
        if dispatcher not in functions:
            continue
        extra: List[CallSite] = []
        for target in targets:
            if target.startswith("@registered:"):
                module_name = target.split(":", 1)[1]
                extra.extend(
                    CallSite(callee=qualname, line=0)
                    for qualname in registrations.get(module_name, ())
                )
            else:
                extra.append(CallSite(callee=target, line=0))
        node = functions[dispatcher]
        functions[dispatcher] = FunctionNode(
            qualname=node.qualname,
            module=node.module,
            rel_path=node.rel_path,
            line=node.line,
            calls=node.calls + tuple(extra),
            set_iterations=node.set_iterations,
            env_reads=node.env_reads,
            float_byte_divisions=node.float_byte_divisions,
        )

    return CallGraph(functions, registrations, module_count=len(modules))
