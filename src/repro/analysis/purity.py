"""Whole-program determinism analyzer: sources, sinks, and facades.

The repo's headline guarantees are *determinism contracts*: byte-identical
checkpoint resume, fixed-clock canonical :class:`~repro.obs.runlog.RunRecord`
serialization, seeded fault injection, and bench observations that stay
comparable PR-over-PR.  Each is enforced dynamically (kill-and-resume
tests, golden bytes), but they erode statically — one convenient
``time.time()`` or unordered ``set`` iteration at a time.  This module
proves the contracts structurally, over the call graph built by
:mod:`repro.analysis.callgraph`:

* a **nondeterminism source** is a call or construct whose value varies
  across runs with identical inputs — wall-clock reads (``time.time``,
  ``datetime.now``), global-RNG calls (``random.*`` outside a seeded
  ``random.Random`` instance), entropy (``os.urandom``, ``uuid.*``,
  ``secrets``), ``id()``, ``os.environ`` reads, iteration over
  set-typed values into an ordered consumer, and true division landing
  in a byte-count binding;
* a **determinism sink** is a function whose output must be
  byte-reproducible — the checkpoint journal, canonical run-record
  serialization, the trace/metrics exporters, rendered artifact
  writers, and the grid merge whose order defines result order;
* a **facade** is a reviewed laundering point where nondeterminism is
  by design converted into a pinned input — the injected-clock default
  in ``runlog._new_record``, the worker/retry env knobs proven
  output-invariant, and the seed-derived fault-decision hash.

Effects propagate by fixpoint over the call graph (a function is
tainted if it performs a source effect or calls a tainted function;
facade edges do not propagate).  A finding is reported at every
**minimal confluence**: the lowest function from which both a source
and a sink are reachable, with the full call chain to each — exactly
the evidence a reviewer needs to either fix the path or suppress it in
``purity-baseline.toml`` with a justification.  Baseline entries that
stop matching anything are themselves findings (``unused-suppression``),
so the suppression file can only shrink.

Backing for ``repro purity`` / ``repro lint --deep`` (text, JSON, and
SARIF 2.1.0 output) and the pytest repo-clean guard in
``tests/analysis/test_purity.py``.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_callgraph,
    default_root,
)
from repro.errors import ReproError, UsageError

#: Analyzer identity carried into SARIF output.
TOOL_NAME = "repro-purity"
TOOL_VERSION = "1.0.0"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Default baseline file name, repo-root relative.
BASELINE_FILENAME = "purity-baseline.toml"

#: Finding rule ids.
RULE_PATH = "purity-path"
RULE_UNUSED = "unused-suppression"


class PurityError(ReproError):
    """The purity analyzer was misconfigured or hit an unusable input."""


# ---------------------------------------------------------------------------
# Source classification
# ---------------------------------------------------------------------------

#: Wall-clock reads: vary across runs, must route through the injected
#: clock facade instead.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: OS entropy and unique-id generators.
ENTROPY_CALLS = frozenset(
    {"os.urandom", "uuid.uuid1", "uuid.uuid3", "uuid.uuid4", "uuid.uuid5"}
)

#: Environment reads resolved as calls (subscript reads are a graph fact).
ENV_CALLS = frozenset({"os.getenv", "os.environ.get", "os.environb.get"})

#: Source kinds (finding vocabulary).
KIND_WALL_CLOCK = "wall-clock"
KIND_RANDOM = "global-random"
KIND_ENTROPY = "entropy"
KIND_OBJECT_ID = "object-id"
KIND_ENV = "env-read"
KIND_UNORDERED = "unordered-iteration"
KIND_FLOAT_BYTE = "float-accumulation"


def classify_source_call(qualname: str) -> Optional[Tuple[str, str]]:
    """``(kind, token)`` when a resolved callee is a nondeterminism
    source, else ``None``.

    Seeded ``random.Random`` instances are the sanctioned facade for
    randomness, so their methods are *not* sources; module-level
    ``random.*`` functions (the process-global RNG) and
    ``random.SystemRandom`` (OS entropy) are.
    """
    if qualname in WALL_CLOCK_CALLS:
        return (KIND_WALL_CLOCK, qualname)
    if qualname in ENTROPY_CALLS or qualname.startswith("secrets."):
        return (KIND_ENTROPY, qualname)
    if qualname in ENV_CALLS:
        return (KIND_ENV, qualname)
    if qualname == "builtins.id":
        return (KIND_OBJECT_ID, qualname)
    if qualname == "random.SystemRandom" or qualname.startswith(
        "random.SystemRandom."
    ):
        return (KIND_ENTROPY, qualname)
    if qualname.startswith("random."):
        rest = qualname[len("random."):]
        if rest == "Random" or rest.startswith("Random."):
            return None  # seeded-instance facade
        return (KIND_RANDOM, qualname)
    return None


# ---------------------------------------------------------------------------
# Configuration: sinks, facades, dispatch
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SinkSpec:
    """One function whose output must stay byte-reproducible."""

    qualname: str
    label: str
    description: str


@dataclass(frozen=True)
class FacadeSpec:
    """One reviewed laundering point effects may legitimately pass
    through; the justification names the dynamic test pinning it."""

    qualname: str
    justification: str


@dataclass(frozen=True)
class PurityConfig:
    """Everything the analyzer needs besides the tree itself."""

    sinks: Tuple[SinkSpec, ...]
    facades: Tuple[FacadeSpec, ...]
    #: Dispatcher qualname -> callee qualnames / ``@registered:<module>``.
    dispatch: Tuple[Tuple[str, Tuple[str, ...]], ...]
    package: str = "repro"

    def sink_labels(self) -> Dict[str, str]:
        return {sink.qualname: sink.label for sink in self.sinks}

    def facade_names(self) -> Set[str]:
        return {facade.qualname for facade in self.facades}

    def dispatch_map(self) -> Dict[str, Tuple[str, ...]]:
        return dict(self.dispatch)


#: The repo's determinism sinks: where bytes become artifacts.
DEFAULT_SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec(
        "repro.runner.checkpoint.RunCheckpoint.record",
        "checkpoint-journal",
        "appends one finished cell to the resume journal; resumed runs "
        "must be byte-identical to uninterrupted ones",
    ),
    SinkSpec(
        "repro.runner.checkpoint.cell_digest",
        "checkpoint-identity",
        "content digest identifying a cell across runs and processes",
    ),
    SinkSpec(
        "repro.obs.runlog.RunRecord.to_json",
        "runlog-serialization",
        "canonical one-line run-record serialization (sorted keys, "
        "fixed separators); fixed clock + fixed inputs => fixed bytes",
    ),
    SinkSpec(
        "repro.obs.runlog.RunLedger.append",
        "runlog-ledger",
        "appends a canonical record line to the persistent ledger",
    ),
    SinkSpec(
        "repro.obs.export.chrome_trace_events",
        "trace-export",
        "flattens spans/exchanges into trace events; byte-stable across "
        "identical runs",
    ),
    SinkSpec(
        "repro.obs.export.write_chrome_trace",
        "trace-export",
        "writes the Chrome trace-event JSON artifact",
    ),
    SinkSpec(
        "repro.obs.export.write_prometheus_textfile",
        "metrics-export",
        "renders and atomically writes the Prometheus textfile",
    ),
    SinkSpec(
        "repro.reporting.summary._write",
        "report-artifact",
        "writes one rendered table/figure pair of the full report",
    ),
    SinkSpec(
        "repro.runner.runall.write_report",
        "runall-artifact",
        "writes every run-all artifact; CI diffs fresh vs resumed "
        "output directories byte for byte",
    ),
    SinkSpec(
        "repro.reporting.bench.BenchReport.write",
        "bench-artifact",
        "persists the schema-versioned benchmark observation",
    ),
    SinkSpec(
        "repro.runner.grid.ExperimentGrid.add",
        "grid-merge",
        "grid order defines result order; the merge contract parallel "
        "output leans on",
    ),
)

#: The repo's reviewed facades; each justification names the dynamic
#: test that pins the laundered value.
DEFAULT_FACADES: Tuple[FacadeSpec, ...] = (
    FacadeSpec(
        "repro.obs.runlog._new_record",
        "injected clock: the wall-clock default is the declared "
        "timestamp facade; byte-identity under a fixed clock is pinned "
        "by tests/obs/test_runlog.py",
    ),
    FacadeSpec(
        "repro.runner.executor.resolve_workers",
        "worker-count env knob: parallel output == serial output is "
        "pinned by tests/runner/test_equivalence.py",
    ),
    FacadeSpec(
        "repro.runner.executor.resolve_cell_retries",
        "retry-budget env knob: affects scheduling only; outcome "
        "equivalence is pinned by tests/runner/test_resilience.py",
    ),
    FacadeSpec(
        "repro.faults.plan.FaultInjector._unit",
        "seed-derived SHA-256 decision stream: same seed => same "
        "faults, pinned by tests/faults/test_plan.py",
    ),
)

#: Registry dispatchers that need synthetic call edges.
DEFAULT_DISPATCH: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (
        "repro.runner.experiments.execute_cell",
        ("@registered:repro.runner.experiments",),
    ),
)


def default_config() -> PurityConfig:
    """The repo's source/sink/facade tables (see DESIGN.md)."""
    return PurityConfig(
        sinks=DEFAULT_SINKS,
        facades=DEFAULT_FACADES,
        dispatch=DEFAULT_DISPATCH,
    )


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SourceOrigin:
    """One intrinsic source effect at a concrete location."""

    kind: str
    token: str
    function: str
    line: int


@dataclass(frozen=True)
class ChainStep:
    """One hop of a reported call chain."""

    qualname: str
    rel_path: str
    line: int


@dataclass(frozen=True)
class PurityFinding:
    """One source-to-sink path (or an unused baseline entry)."""

    rule: str
    message: str
    rel_path: str
    line: int
    source_kind: str = ""
    source_token: str = ""
    source_function: str = ""
    sink: str = ""
    sink_label: str = ""
    confluence: str = ""
    source_chain: Tuple[ChainStep, ...] = ()
    sink_chain: Tuple[ChainStep, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "message": self.message,
            "path": self.rel_path,
            "line": self.line,
        }
        if self.rule == RULE_PATH:
            payload.update(
                {
                    "source_kind": self.source_kind,
                    "source_token": self.source_token,
                    "source_function": self.source_function,
                    "sink": self.sink,
                    "sink_label": self.sink_label,
                    "confluence": self.confluence,
                    "source_chain": [
                        {"function": s.qualname, "path": s.rel_path, "line": s.line}
                        for s in self.source_chain
                    ],
                    "sink_chain": [
                        {"function": s.qualname, "path": s.rel_path, "line": s.line}
                        for s in self.sink_chain
                    ],
                }
            )
        return payload


@dataclass(frozen=True)
class BaselineEntry:
    """One reviewed suppression from ``purity-baseline.toml``."""

    rule: str
    source: str
    sink: str
    justification: str
    function: str = "*"

    def matches(self, finding: PurityFinding) -> bool:
        return (
            finding.rule == self.rule
            and fnmatch.fnmatchcase(finding.source_token, self.source)
            and fnmatch.fnmatchcase(finding.sink, self.sink)
            and fnmatch.fnmatchcase(finding.source_function, self.function)
        )


@dataclass(frozen=True)
class PurityReport:
    """The analyzer's complete verdict over one tree."""

    findings: Tuple[PurityFinding, ...]
    suppressed: Tuple[PurityFinding, ...]
    unused_suppressions: Tuple[BaselineEntry, ...]
    module_count: int
    function_count: int
    edge_count: int
    source_prefix: str = "src/repro"
    baseline_path: Optional[str] = None

    @property
    def clean(self) -> bool:
        """No unsuppressed findings and no stale baseline entries."""
        return not self.findings and not self.unused_suppressions

    def display_path(self, rel_path: str) -> str:
        if not self.source_prefix:
            return rel_path
        return f"{self.source_prefix}/{rel_path}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tool": TOOL_NAME,
            "version": TOOL_VERSION,
            "modules": self.module_count,
            "functions": self.function_count,
            "edges": self.edge_count,
            "baseline": self.baseline_path,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "unused_suppressions": [
                {
                    "rule": entry.rule,
                    "source": entry.source,
                    "sink": entry.sink,
                    "function": entry.function,
                    "justification": entry.justification,
                }
                for entry in self.unused_suppressions
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# Fixpoint propagation
# ---------------------------------------------------------------------------

def _own_effects(node: FunctionNode) -> List[SourceOrigin]:
    effects: List[SourceOrigin] = []
    for site in node.calls:
        classified = classify_source_call(site.callee)
        if classified is not None:
            kind, token = classified
            effects.append(
                SourceOrigin(
                    kind=kind, token=token, function=node.qualname, line=site.line
                )
            )
    for line in node.set_iterations:
        effects.append(
            SourceOrigin(
                kind=KIND_UNORDERED,
                token="set-iteration",
                function=node.qualname,
                line=line,
            )
        )
    for line in node.env_reads:
        effects.append(
            SourceOrigin(
                kind=KIND_ENV,
                token="os.environ[]",
                function=node.qualname,
                line=line,
            )
        )
    for line in node.float_byte_divisions:
        effects.append(
            SourceOrigin(
                kind=KIND_FLOAT_BYTE,
                token="float-byte-division",
                function=node.qualname,
                line=line,
            )
        )
    return effects


#: Parent pointer: the call site that contributed a propagated fact
#: (``None`` for the function's own effects / own sink membership).
_Parent = Optional[CallSite]


class _Propagation:
    """Taint and sink reachability to fixpoint over the graph."""

    def __init__(self, graph: CallGraph, config: PurityConfig) -> None:
        self.graph = graph
        self.facades = config.facade_names()
        self.sink_names = {sink.qualname for sink in config.sinks}
        #: function -> origin -> contributing call site (None = own).
        self.taint: Dict[str, Dict[SourceOrigin, _Parent]] = {}
        #: function -> sink qualname -> contributing call site.
        self.sink_reach: Dict[str, Dict[str, _Parent]] = {}
        self._run()

    def _run(self) -> None:
        callers: Dict[str, List[str]] = {}
        for qualname, node in self.graph.functions.items():
            self.taint[qualname] = {}
            self.sink_reach[qualname] = {}
            for site in node.calls:
                if site.callee in self.graph.functions:
                    callers.setdefault(site.callee, []).append(qualname)

        worklist: List[str] = []
        for qualname, node in self.graph.functions.items():
            if qualname not in self.facades:
                for origin in _own_effects(node):
                    self.taint[qualname][origin] = None
            if qualname in self.sink_names:
                self.sink_reach[qualname][qualname] = None
            if self.taint[qualname] or self.sink_reach[qualname]:
                worklist.append(qualname)

        while worklist:
            current = worklist.pop()
            if current in self.facades:
                continue  # facades do not propagate upward
            current_taint = self.taint[current]
            current_sinks = self.sink_reach[current]
            for caller in callers.get(current, ()):
                if caller in self.facades:
                    continue
                changed = False
                site = self._edge(caller, current)
                if site is None:
                    continue
                caller_taint = self.taint[caller]
                for origin in current_taint:
                    if origin not in caller_taint:
                        caller_taint[origin] = site
                        changed = True
                caller_sinks = self.sink_reach[caller]
                for sink in current_sinks:
                    if sink not in caller_sinks:
                        caller_sinks[sink] = site
                        changed = True
                if changed:
                    worklist.append(caller)

    def _edge(self, caller: str, callee: str) -> Optional[CallSite]:
        for site in self.graph.functions[caller].calls:
            if site.callee == callee:
                return site
        return None

    # -- chain reconstruction ------------------------------------------

    def source_chain(
        self, start: str, origin: SourceOrigin
    ) -> Tuple[ChainStep, ...]:
        steps: List[ChainStep] = []
        current = start
        guard = 0
        while guard < len(self.graph.functions) + 1:
            guard += 1
            node = self.graph.functions[current]
            parent = self.taint[current].get(origin)
            if parent is None:
                steps.append(
                    ChainStep(
                        qualname=current,
                        rel_path=node.rel_path,
                        line=origin.line if current == origin.function else node.line,
                    )
                )
                return tuple(steps)
            steps.append(
                ChainStep(qualname=current, rel_path=node.rel_path, line=parent.line)
            )
            current = parent.callee
        return tuple(steps)

    def sink_chain(self, start: str, sink: str) -> Tuple[ChainStep, ...]:
        steps: List[ChainStep] = []
        current = start
        guard = 0
        while guard < len(self.graph.functions) + 1:
            guard += 1
            node = self.graph.functions[current]
            parent = self.sink_reach[current].get(sink)
            if parent is None:
                steps.append(
                    ChainStep(
                        qualname=current, rel_path=node.rel_path, line=node.line
                    )
                )
                return tuple(steps)
            steps.append(
                ChainStep(qualname=current, rel_path=node.rel_path, line=parent.line)
            )
            current = parent.callee
        return tuple(steps)


def _minimal_confluences(
    graph: CallGraph, config: PurityConfig, prop: _Propagation
) -> List[PurityFinding]:
    """One finding per (origin, sink) pair at each lowest merge point."""
    labels = config.sink_labels()
    facades = config.facade_names()
    findings: List[PurityFinding] = []
    reported: Set[Tuple[SourceOrigin, str, str]] = set()
    for qualname in sorted(graph.functions):
        if qualname in facades:
            continue
        taint = prop.taint[qualname]
        sinks = prop.sink_reach[qualname]
        if not taint or not sinks:
            continue
        internal = [
            site.callee
            for site in graph.internal_callees(qualname)
            if site.callee not in facades
        ]
        for origin in taint:
            for sink in sinks:
                lower = any(
                    origin in prop.taint[callee] and sink in prop.sink_reach[callee]
                    for callee in internal
                )
                if lower:
                    continue
                key = (origin, sink, qualname)
                if key in reported:
                    continue
                reported.add(key)
                node = graph.functions[origin.function]
                findings.append(
                    PurityFinding(
                        rule=RULE_PATH,
                        message=(
                            f"{origin.kind} source {origin.token} in "
                            f"{origin.function} can reach "
                            f"{labels.get(sink, 'determinism')} sink {sink} "
                            f"(paths merge at {qualname})"
                        ),
                        rel_path=node.rel_path,
                        line=origin.line,
                        source_kind=origin.kind,
                        source_token=origin.token,
                        source_function=origin.function,
                        sink=sink,
                        sink_label=labels.get(sink, ""),
                        confluence=qualname,
                        source_chain=prop.source_chain(qualname, origin),
                        sink_chain=prop.sink_chain(qualname, sink),
                    )
                )
    findings.sort(
        key=lambda f: (f.rel_path, f.line, f.sink, f.confluence, f.source_token)
    )
    return findings


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def _parse_baseline_toml(text: str, path: str) -> List[BaselineEntry]:
    """Parse the baseline file.

    Uses :mod:`tomllib` where available (3.11+); otherwise falls back
    to a strict subset parser covering exactly the baseline's shape:
    full-line comments, ``[[suppression]]`` table headers, and
    ``key = "value"`` string pairs.
    """
    rows: List[Dict[str, str]]
    try:
        import tomllib
    except ImportError:
        rows = _parse_toml_subset(text, path)
    else:
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise UsageError(f"{path}: invalid TOML: {error}")
        raw = payload.get("suppression", [])
        if not isinstance(raw, list):
            raise UsageError(f"{path}: [[suppression]] must be an array of tables")
        rows = []
        for item in raw:
            if not isinstance(item, dict) or not all(
                isinstance(v, str) for v in item.values()
            ):
                raise UsageError(f"{path}: suppression values must be strings")
            rows.append({str(k): str(v) for k, v in item.items()})
    return [_entry_from_row(row, path) for row in rows]


def _parse_toml_subset(text: str, path: str) -> List[Dict[str, str]]:
    rows: List[Dict[str, str]] = []
    current: Optional[Dict[str, str]] = None
    for number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[suppression]]":
            current = {}
            rows.append(current)
            continue
        if "=" in line and current is not None:
            key, _, value = line.partition("=")
            key = key.strip()
            value = value.strip()
            if (
                len(value) >= 2
                and value[0] == '"'
                and value[-1] == '"'
                and key.isidentifier()
            ):
                current[key] = value[1:-1]
                continue
        raise UsageError(
            f"{path}:{number}: unsupported baseline syntax {line!r} "
            "(expected [[suppression]] tables of key = \"value\" pairs)"
        )
    return rows


def _entry_from_row(row: Mapping[str, str], path: str) -> BaselineEntry:
    missing = [key for key in ("rule", "source", "sink", "justification") if key not in row]
    if missing:
        raise UsageError(
            f"{path}: suppression entry is missing {', '.join(missing)}"
        )
    if not row["justification"].strip():
        raise UsageError(f"{path}: suppression justification must not be empty")
    return BaselineEntry(
        rule=row["rule"],
        source=row["source"],
        sink=row["sink"],
        justification=row["justification"],
        function=row.get("function", "*"),
    )


def load_baseline(path: Union[str, Path]) -> List[BaselineEntry]:
    """Load and validate the suppression baseline."""
    baseline_path = Path(path)
    if not baseline_path.is_file():
        raise UsageError(f"baseline file {baseline_path} does not exist")
    return _parse_baseline_toml(
        baseline_path.read_text(encoding="utf-8"), str(baseline_path)
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def analyze_callgraph(
    graph: CallGraph,
    config: Optional[PurityConfig] = None,
    baseline: Sequence[BaselineEntry] = (),
    source_prefix: str = "src/repro",
    baseline_path: Optional[str] = None,
) -> PurityReport:
    """Run the purity analysis over an already-built call graph."""
    cfg = config if config is not None else default_config()
    prop = _Propagation(graph, cfg)
    all_findings = _minimal_confluences(graph, cfg, prop)
    used: Set[int] = set()
    open_findings: List[PurityFinding] = []
    suppressed: List[PurityFinding] = []
    for finding in all_findings:
        matched = False
        for index, entry in enumerate(baseline):
            if entry.matches(finding):
                used.add(index)
                matched = True
                break
        (suppressed if matched else open_findings).append(finding)
    unused = tuple(
        entry for index, entry in enumerate(baseline) if index not in used
    )
    return PurityReport(
        findings=tuple(open_findings),
        suppressed=tuple(suppressed),
        unused_suppressions=unused,
        module_count=graph.module_count,
        function_count=len(graph),
        edge_count=graph.edge_count,
        source_prefix=source_prefix,
        baseline_path=baseline_path,
    )


def analyze_tree(
    root: Optional[Union[str, Path]] = None,
    config: Optional[PurityConfig] = None,
    baseline: Sequence[BaselineEntry] = (),
    source_prefix: Optional[str] = None,
    baseline_path: Optional[str] = None,
) -> PurityReport:
    """Build the call graph under ``root`` and analyze it.

    ``root`` defaults to the installed ``repro`` package; the default
    ``source_prefix`` renders finding paths repo-relative.
    """
    cfg = config if config is not None else default_config()
    anchor = Path(root) if root is not None else default_root()
    graph = build_callgraph(
        root=anchor, package=cfg.package, dispatch=cfg.dispatch_map()
    )
    if source_prefix is None:
        source_prefix = "src/repro" if root is None else ""
    return analyze_callgraph(
        graph,
        config=cfg,
        baseline=baseline,
        source_prefix=source_prefix,
        baseline_path=baseline_path,
    )


def missing_sink_functions(
    graph: CallGraph, config: Optional[PurityConfig] = None
) -> List[str]:
    """Configured sinks/facades that no longer exist in the tree.

    A renamed sink silently un-gates its contract, so the repo-clean
    test fails if this is non-empty.
    """
    cfg = config if config is not None else default_config()
    names = [sink.qualname for sink in cfg.sinks]
    names.extend(facade.qualname for facade in cfg.facades)
    return [name for name in names if name not in graph.functions]


# ---------------------------------------------------------------------------
# Rendering: text / JSON / SARIF
# ---------------------------------------------------------------------------

def _render_chain(report: PurityReport, chain: Sequence[ChainStep]) -> str:
    return " -> ".join(
        f"{step.qualname} ({report.display_path(step.rel_path)}:{step.line})"
        for step in chain
    )


def render_text(report: PurityReport) -> str:
    """Human-readable findings block, one stanza per finding."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"{report.display_path(finding.rel_path)}:{finding.line}: "
            f"[{finding.rule}] {finding.message}"
        )
        if finding.rule == RULE_PATH:
            lines.append(
                "    source chain: " + _render_chain(report, finding.source_chain)
            )
            lines.append(
                "    sink chain:   " + _render_chain(report, finding.sink_chain)
            )
    for entry in report.unused_suppressions:
        location = report.baseline_path or BASELINE_FILENAME
        lines.append(
            f"{location}:1: [{RULE_UNUSED}] baseline entry "
            f"(rule={entry.rule!r}, source={entry.source!r}, "
            f"sink={entry.sink!r}) no longer matches any finding; "
            "delete it"
        )
    summary = (
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.unused_suppressions)} unused suppression(s) "
        f"[{report.module_count} modules, {report.function_count} functions, "
        f"{report.edge_count} edges]"
    )
    lines.append(summary)
    return "\n".join(lines)


_RULE_DESCRIPTORS: Tuple[Dict[str, Any], ...] = (
    {
        "id": RULE_PATH,
        "name": "NondeterminismReachesSink",
        "shortDescription": {
            "text": "A nondeterminism source can reach a determinism sink "
            "without passing through a declared facade."
        },
        "defaultConfiguration": {"level": "error"},
    },
    {
        "id": RULE_UNUSED,
        "name": "UnusedSuppression",
        "shortDescription": {
            "text": "A purity-baseline.toml entry no longer matches any "
            "finding and must be deleted."
        },
        "defaultConfiguration": {"level": "warning"},
    },
)


def _sarif_location(
    report: PurityReport, rel_path: str, line: int, message: Optional[str] = None
) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "physicalLocation": {
            "artifactLocation": {"uri": report.display_path(rel_path)},
            "region": {"startLine": max(1, line)},
        }
    }
    if message is not None:
        location["message"] = {"text": message}
    return location


def _sarif_thread_flow(
    report: PurityReport, finding: PurityFinding
) -> Dict[str, Any]:
    """One thread flow: source effect up to the confluence, then down
    to the sink."""
    steps: List[Dict[str, Any]] = []
    for step in reversed(finding.source_chain):
        steps.append(
            {
                "location": _sarif_location(
                    report, step.rel_path, step.line, message=step.qualname
                )
            }
        )
    for step in finding.sink_chain[1:]:
        steps.append(
            {
                "location": _sarif_location(
                    report, step.rel_path, step.line, message=step.qualname
                )
            }
        )
    return {"threadFlows": [{"locations": steps}]}


def to_sarif(report: PurityReport) -> Dict[str, Any]:
    """The report as a SARIF 2.1.0 log (one run)."""
    results: List[Dict[str, Any]] = []
    for finding in report.findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                _sarif_location(report, finding.rel_path, finding.line)
            ],
        }
        if finding.rule == RULE_PATH:
            result["codeFlows"] = [_sarif_thread_flow(report, finding)]
            result["relatedLocations"] = [
                _sarif_location(
                    report,
                    finding.sink_chain[-1].rel_path,
                    finding.sink_chain[-1].line,
                    message=f"sink {finding.sink}",
                )
            ]
        results.append(result)
    for entry in report.unused_suppressions:
        results.append(
            {
                "ruleId": RULE_UNUSED,
                "level": "warning",
                "message": {
                    "text": (
                        f"baseline entry (rule={entry.rule!r}, "
                        f"source={entry.source!r}, sink={entry.sink!r}) "
                        "no longer matches any finding; delete it"
                    )
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": report.baseline_path or BASELINE_FILENAME
                            },
                            "region": {"startLine": 1},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "https://example.invalid/repro",
                        "rules": [dict(rule) for rule in _RULE_DESCRIPTORS],
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def to_sarif_json(report: PurityReport) -> str:
    return json.dumps(to_sarif(report), indent=2, sort_keys=True)
