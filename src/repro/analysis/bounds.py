"""Closed-form worst-case amplification bounds (paper §IV).

The paper derives its amplification factors analytically before
measuring anything: SBR ≈ resource size over the attacker's tiny
response (§IV-B), OBR ≈ ``n·(F + part overhead)`` over one full fetch
(§IV-C).  This module computes those bounds as *sound upper limits* on
what the simulation stack can ever report, from the same inputs the
simulation uses — vendor profiles, header limits, and the overhead
model — but without opening a connection.

Soundness contract (pinned by ``tests/analysis/test_cross_check.py``):
for every cell of the run-all grid,
``simulated factor <= bound.factor``.  Numerators are over-estimated
(header allowances added, per-fetch framing and handshake included) and
denominators under-estimated (body bytes ignored, padding slack
subtracted), so the ratio can only be pessimistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

from repro.cdn.multirange import MultiRangeReplyBehavior
from repro.cdn.vendors import create_profile
from repro.cdn.vendors.azure import DEFAULT_ABORT_SLOP, EIGHT_MB, WINDOW_LAST
from repro.cdn.vendors.base import VendorContext, VendorProfile
from repro.cdn.vendors.cloudfront import MULTI_RANGE_WINDOW_CAP
from repro.errors import (
    ConfigurationError,
    RangeNotSatisfiableError,
    RequestRejectedError,
)
from repro.http.grammar import overlapping_open_ranges_value
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier, try_parse_range_header
from repro.netsim.overhead import NullOverheadModel, OverheadModel, TcpOverheadModel

#: Builds a fresh profile instance (profiles are stateful).  Bound
#: functions accept one so the same closed forms can be re-run under a
#: wrapped/mitigated profile (``repro.analysis.recommend``).
ProfileFactory = Callable[[], VendorProfile]

MB = 1 << 20

#: Upper bound on any origin response header block in this simulation
#: (status line through blank line).  The Apache-like origin emits well
#: under 400 bytes; 1 KB leaves slack for relayed validators.
ORIGIN_HEADER_ALLOWANCE = 1024

#: Upper bound on a CDN's own response header block *above* its
#: calibrated padding target (vendor identity headers, multipart
#: Content-Type, Content-Length digits).
CDN_HEADER_ALLOWANCE = 1024

#: ``pad_response`` guarantees the client header block reaches
#: ``client_header_block_target`` minus at most the pad header's own
#: framing (name + ``": "`` + CRLF).  The longest pad header name in the
#: registry is 15 characters, so 40 bytes of slack is safe.
PAD_HEADER_SLACK = 40

#: Absolute floor on any HTTP response's wire size (status line plus the
#: mandatory headers every node emits).
RESPONSE_WIRE_FLOOR = 64

#: Per-part framing allowance for an origin ``multipart/byteranges``
#: reply to a lazily forwarded multi-range request.  The Apache-like
#: origin's actual per-part overhead (13-hex-digit boundary, Content-Type
#: and Content-Range lines) stays under 120 bytes; 256 leaves slack.
MULTIPART_PART_ALLOWANCE = 256

#: Closing delimiter allowance for such a multipart reply.
MULTIPART_CLOSER_ALLOWANCE = 64


@dataclass(frozen=True)
class _Fetch:
    """One back-to-origin exchange in a vendor's worst-case fetch plan."""

    #: Upper bound on the response *payload* bytes the origin sends.
    payload_upper: int
    #: Delivery cap the node imposes (Azure's connection cut), if any.
    payload_cap: Optional[int] = None


@dataclass(frozen=True)
class SbrBound:
    """Static worst-case bound for one SBR cell (vendor × size)."""

    vendor: str
    resource_size: int
    #: Range values one attack round sends (Table IV column 2).
    range_cases: Tuple[str, ...]
    #: Back-to-origin exchanges one round triggers at most.
    origin_fetches: int
    #: Upper bound on victim-side (cdn-origin) response bytes per round.
    origin_bytes_upper: int
    #: Client responses one round produces.
    client_responses: int
    #: Lower bound on attacker-side (client-cdn) response bytes per round.
    client_bytes_lower: int

    @property
    def factor(self) -> float:
        """Upper bound on the simulated amplification factor."""
        if self.client_bytes_lower <= 0:
            return 0.0
        return self.origin_bytes_upper / self.client_bytes_lower


def sbr_bound(
    vendor: str,
    resource_size: int,
    overhead: Optional[OverheadModel] = None,
) -> SbrBound:
    """Closed-form worst-case SBR amplification for one vendor × size.

    Mirrors :class:`~repro.core.sbr.SbrAttack` analytically: the
    numerator upper-bounds the per-round ``cdn-origin`` response traffic
    under the vendor's fetch plan (including multi-connection flows and
    Azure's delivery cut), the denominator lower-bounds the per-round
    ``client-cdn`` response traffic from the calibrated header-padding
    targets.
    """
    from repro.core.sbr import exploited_range_cases

    model = overhead if overhead is not None else NullOverheadModel()
    cases = exploited_range_cases(vendor, resource_size)
    fetches = _fetch_plan(vendor, resource_size)
    header_target = type(create_profile(vendor)).client_header_block_target
    return _assemble_sbr_bound(
        vendor, resource_size, cases, fetches, header_target, model
    )


def _assemble_sbr_bound(
    vendor: str,
    resource_size: int,
    cases: List[str],
    fetches: List[_Fetch],
    header_block_target: int,
    model: OverheadModel,
) -> SbrBound:
    """Fold a fetch plan into the over/under-estimated bound ratio."""
    origin_upper = 0
    for fetch in fetches:
        sent = (
            model.framed_size(fetch.payload_upper + ORIGIN_HEADER_ALLOWANCE)
            + model.connection_setup_bytes()
        )
        if fetch.payload_cap is not None:
            # Delivered bytes are capped at header block + payload cap.
            sent = min(sent, fetch.payload_cap + ORIGIN_HEADER_ALLOWANCE)
        origin_upper += sent

    per_response = max(
        RESPONSE_WIRE_FLOOR,
        header_block_target - PAD_HEADER_SLACK,
    )
    client_lower = len(cases) * per_response

    return SbrBound(
        vendor=vendor,
        resource_size=resource_size,
        range_cases=tuple(cases),
        origin_fetches=len(fetches),
        origin_bytes_upper=origin_upper,
        client_responses=len(cases),
        client_bytes_lower=client_lower,
    )


def profile_sbr_bound(
    vendor: str,
    profile_factory: ProfileFactory,
    resource_size: int,
    overhead: Optional[OverheadModel] = None,
) -> SbrBound:
    """Worst-case SBR bound for ``vendor``'s exploited cases replayed
    against a *substituted* profile (the mitigation residual).

    The fetch plan is derived from the substituted profile's own
    ``forward_decision`` table: a lazily forwarded range costs the origin
    only the requested bytes, an expanded range costs the expanded
    window, and a deleted Range header costs the full representation.
    ``SlicingProfile`` fetch flows are bounded by their slice arithmetic.

    Soundness scope: profiles using the base single-connection fetch
    flow (every ``repro.defense.mitigations`` wrapper qualifies — the
    multi-connection vendor quirks are exactly what the mitigations
    remove).  Raw registry profiles with custom fetch flows (Azure,
    KeyCDN, StackPath) are *not* admissible here; use :func:`sbr_bound`.
    """
    from repro.core.sbr import exploited_range_cases

    model = overhead if overhead is not None else NullOverheadModel()
    cases = exploited_range_cases(vendor, resource_size)
    profile = profile_factory()
    # One decision per case on one instance, mirroring the request order
    # a single attack round replays against a single edge node.
    fetches = [_decision_fetch(profile, case, resource_size) for case in cases]
    return _assemble_sbr_bound(
        vendor,
        resource_size,
        cases,
        fetches,
        profile.client_header_block_target,
        model,
    )


def _decision_fetch(
    profile: VendorProfile, range_value: str, resource_size: int
) -> _Fetch:
    """Upper-bound one exploited case's origin payload under ``profile``."""
    from repro.cdn.vendors.base import SpecShape, classify_spec
    from repro.defense.mitigations import SlicingProfile

    spec = try_parse_range_header(range_value)
    if spec is None:
        return _Fetch(payload_upper=resource_size)

    if isinstance(profile, SlicingProfile):
        if classify_spec(spec) is SpecShape.SINGLE_CLOSED:
            try:
                resolved = spec.resolve(resource_size)
            except RangeNotSatisfiableError:
                return _Fetch(payload_upper=0)
            only = resolved[0]
            size = profile.slice_size
            count = only.end // size - only.start // size + 1
            return _Fetch(payload_upper=min(count * size, resource_size))
        # Open/suffix/multi shapes fall through to the lazy base flow.
        return _lazy_payload_fetch(spec, resource_size)

    request = HttpRequest(
        "GET",
        "/target.bin",
        headers=[("Host", "victim.example"), ("Range", range_value)],
    )
    ctx = VendorContext(
        config=profile.effective_config(), resource_size_hint=resource_size
    )
    decision = profile.forward_decision(request, spec, ctx)
    if decision.forwarded_range is None:
        # Deletion: the origin ships the full representation.
        return _Fetch(payload_upper=resource_size)
    forwarded = try_parse_range_header(decision.forwarded_range)
    if forwarded is None:
        return _Fetch(payload_upper=resource_size)
    return _lazy_payload_fetch(forwarded, resource_size)


def _lazy_payload_fetch(spec: RangeSpecifier, resource_size: int) -> _Fetch:
    """Origin payload for a Range header forwarded as ``spec``: the
    resolved bytes plus multipart framing when more than one part."""
    try:
        resolved = spec.resolve(resource_size)
    except RangeNotSatisfiableError:
        # The origin answers 416: headers only.
        return _Fetch(payload_upper=0)
    payload = sum(r.length for r in resolved)
    if len(resolved) > 1:
        payload += (
            len(resolved) * MULTIPART_PART_ALLOWANCE + MULTIPART_CLOSER_ALLOWANCE
        )
    return _Fetch(payload_upper=payload)


def _fetch_plan(vendor: str, resource_size: int) -> List[_Fetch]:
    """Worst-case back-to-origin exchanges for one exploited round.

    Derived from each profile's documented fetch flow (§V-A): most
    vendors make one full-representation fetch; KeyCDN's stateful flow
    and StackPath's 206-triggered refetch add a small lazy 206 first;
    Azure cuts past 8 MB and may open the expansion window; CloudFront
    never widens a multi-range past its 10 MB window cap.
    """
    if vendor == "keycdn" or vendor == "stackpath":
        # A lazy single-byte 206, then the full representation.
        return [_Fetch(payload_upper=1), _Fetch(payload_upper=resource_size)]
    if vendor == "azure":
        plan = [
            _Fetch(
                payload_upper=resource_size,
                payload_cap=EIGHT_MB + DEFAULT_ABORT_SLOP,
            )
        ]
        if resource_size > EIGHT_MB:
            # Second connection with Range: bytes=8388608-16777215.
            window = min(resource_size - 1, WINDOW_LAST) - EIGHT_MB + 1
            plan.append(_Fetch(payload_upper=max(0, window)))
        return plan
    if vendor == "cloudfront":
        return [_Fetch(payload_upper=min(resource_size, MULTI_RANGE_WINDOW_CAP))]
    return [_Fetch(payload_upper=resource_size)]


# ---------------------------------------------------------------------------
# SBR under faults + retries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultedSbrBound:
    """Retry-aware worst case: the clean bound × the attempt budget.

    Under a fault plan the CDN may re-ship every back-to-origin fetch up
    to ``max_attempts`` times, so the victim-side numerator scales by the
    attempt budget.  The attacker-side denominator drops to the absolute
    response-wire floor: when the budget exhausts, the client gets a
    relayed (unpadded) error instead of the padded vendor response.

    Scope: sound for fault plans whose delivery faults target the
    ``cdn-origin`` segment (the default plan).  A plan injecting resets
    on the attacker's own ``client-cdn`` segment shrinks the denominator
    arbitrarily and no static bound holds.
    """

    base: SbrBound
    max_attempts: int

    @property
    def vendor(self) -> str:
        return self.base.vendor

    @property
    def resource_size(self) -> int:
        return self.base.resource_size

    @property
    def origin_bytes_upper(self) -> int:
        """Per-round victim bytes: every fetch re-shipped every attempt."""
        return self.base.origin_bytes_upper * self.max_attempts

    @property
    def client_bytes_lower(self) -> int:
        """Per-round attacker floor: one bare-wire response per case."""
        return self.base.client_responses * RESPONSE_WIRE_FLOOR

    @property
    def factor(self) -> float:
        """Upper bound on the simulated faulted amplification factor."""
        if self.client_bytes_lower <= 0:
            return 0.0
        return self.origin_bytes_upper / self.client_bytes_lower


def faulted_sbr_bound(
    vendor: str,
    resource_size: int,
    policy: Optional[object] = None,
    overhead: Optional[OverheadModel] = None,
) -> FaultedSbrBound:
    """Retry-aware worst-case SBR amplification for one vendor × size.

    ``policy`` defaults to the vendor's stock
    :class:`~repro.faults.retry.RetryPolicy` — the one the simulation
    engages whenever a fault injector is installed — so
    ``faulted_sbr_bound(v, s).factor`` upper-bounds
    ``measure_sbr_under_faults(v, s).amplification`` for any seed of the
    default plan.
    """
    from repro.faults.retry import RetryPolicy, retry_policy_for

    if policy is None:
        policy = retry_policy_for(vendor)
    if not isinstance(policy, RetryPolicy):
        raise ConfigurationError(
            f"policy must be a RetryPolicy, got {type(policy).__name__}"
        )
    return FaultedSbrBound(
        base=sbr_bound(vendor, resource_size, overhead=overhead),
        max_attempts=policy.max_attempts,
    )


# ---------------------------------------------------------------------------
# OBR
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ObrBound:
    """Static worst-case bound for one OBR cascade cell."""

    fcdn: str
    bcdn: str
    resource_size: int
    #: Largest ``n`` that survives both CDNs' header limits (static
    #: search; 0 when the cascade is not exploitable).
    max_n: int
    #: Upper bound on the per-part multipart framing overhead.
    part_overhead_upper: int
    #: Upper bound on victim-side (fcdn-bcdn) response bytes.
    victim_bytes_upper: int
    #: Lower bound on attacker-side (bcdn-origin) response bytes.
    attacker_bytes_lower: int

    @property
    def factor(self) -> float:
        """Upper bound on the simulated amplification factor."""
        if self.attacker_bytes_lower <= 0:
            return 0.0
        return self.victim_bytes_upper / self.attacker_bytes_lower


def static_max_n(
    fcdn: str,
    bcdn: str,
    resource_size: int = 1024,
    resource_path: str = "/1KB.bin",
    host: str = "victim.example",
    lower: int = 2,
    upper: int = 32768,
    fcdn_profile: Optional[ProfileFactory] = None,
    bcdn_profile: Optional[ProfileFactory] = None,
) -> int:
    """The largest forwarded-unchanged ``n``, from pure limit checks.

    Replays :meth:`~repro.core.obr.ObrAttack.find_max_n`'s binary search
    without any deployment: a candidate ``n`` survives when the FCDN's
    ingress limits admit the client request, the FCDN's decision table
    forwards the Range header verbatim, the BCDN's ingress limits admit
    the forwarded request, and the BCDN's reply-part cap admits ``n``
    parts.  These are exactly the rejection points of the simulated
    probe, so the two searches agree on every exploitable cascade.

    ``fcdn_profile`` / ``bcdn_profile`` substitute wrapped (mitigated)
    profiles for the named registry vendors on either side.
    """
    if fcdn == bcdn:
        raise ConfigurationError(
            "a CDN is not cascaded with itself (paper Table V excludes it)"
        )
    if fcdn_profile is None and bcdn_profile is None:
        # Registry-vendor searches are pure functions of scalar inputs;
        # the analyzer and the recommendation engine re-ask the same
        # cascades, so the binary search is worth caching.  Wrapped
        # (mitigated) profiles stay uncached — factories have no stable
        # cache identity.
        return _static_max_n_default(
            fcdn, bcdn, resource_size, resource_path, host, lower, upper
        )

    def admits(n: int) -> bool:
        return _static_probe(
            fcdn,
            bcdn,
            n,
            resource_size,
            resource_path,
            host,
            fcdn_profile=fcdn_profile,
            bcdn_profile=bcdn_profile,
        )

    if not admits(lower):
        return 0
    if admits(upper):
        return upper
    low, high = lower, upper  # admits(low), not admits(high)
    while high - low > 1:
        middle = (low + high) // 2
        if admits(middle):
            low = middle
        else:
            high = middle
    return low


@lru_cache(maxsize=1024)
def _static_max_n_default(
    fcdn: str,
    bcdn: str,
    resource_size: int,
    resource_path: str,
    host: str,
    lower: int,
    upper: int,
) -> int:
    def admits(n: int) -> bool:
        return _static_probe(fcdn, bcdn, n, resource_size, resource_path, host)

    if not admits(lower):
        return 0
    if admits(upper):
        return upper
    low, high = lower, upper  # admits(low), not admits(high)
    while high - low > 1:
        middle = (low + high) // 2
        if admits(middle):
            low = middle
        else:
            high = middle
    return low


def _static_probe(
    fcdn: str,
    bcdn: str,
    overlap_count: int,
    resource_size: int,
    resource_path: str,
    host: str,
    fcdn_profile: Optional[ProfileFactory] = None,
    bcdn_profile: Optional[ProfileFactory] = None,
) -> bool:
    """Would a request with ``overlap_count`` ranges survive end-to-end?"""
    from repro.core.obr import exploited_fcdn_config, exploited_leading_spec

    range_value = overlapping_open_ranges_value(
        overlap_count, leading=exploited_leading_spec(fcdn)
    )
    request = HttpRequest(
        "GET", resource_path, headers=[("Host", host), ("Range", range_value)]
    )

    front = fcdn_profile() if fcdn_profile is not None else create_profile(fcdn)
    config = exploited_fcdn_config(fcdn)
    ctx = VendorContext(
        config=config if config is not None else front.effective_config(),
        resource_size_hint=resource_size,
    )
    try:
        front.limits.check(request)
    except RequestRejectedError:
        return False
    decision = front.forward_decision(
        request, try_parse_range_header(range_value), ctx
    )
    if decision.forwarded_range != range_value:
        return False

    upstream = front.build_upstream_request(request, decision)
    back = bcdn_profile() if bcdn_profile is not None else create_profile(bcdn)
    try:
        back.limits.check(upstream)
    except RequestRejectedError:
        return False
    max_parts = back.reply_max_parts
    if max_parts is not None and overlap_count > max_parts:
        return False
    return True


def obr_bound(
    fcdn: str,
    bcdn: str,
    resource_size: int = 1024,
    overlap_count: Optional[int] = None,
    content_type: str = "application/octet-stream",
    overhead: Optional[OverheadModel] = None,
    fcdn_profile: Optional[ProfileFactory] = None,
    bcdn_profile: Optional[ProfileFactory] = None,
) -> ObrBound:
    """Closed-form worst-case OBR amplification for one cascade.

    ``overlap_count=None`` runs the static max-n search first, mirroring
    :meth:`~repro.core.obr.ObrAttack.run`.  The default overhead model is
    the same capture-like TCP framing the simulated attack uses.

    ``fcdn_profile`` / ``bcdn_profile`` substitute wrapped (mitigated)
    profiles.  A coalescing back end (``with_overlap_rejection``,
    ``with_slicing``) merges the attack's pairwise-overlapping ranges
    into a single part, so the part count drops to one.
    """
    model = overhead if overhead is not None else TcpOverheadModel()
    n = (
        overlap_count
        if overlap_count is not None
        else static_max_n(
            fcdn,
            bcdn,
            resource_size=resource_size,
            fcdn_profile=fcdn_profile,
            bcdn_profile=bcdn_profile,
        )
    )
    if n < 1:
        raise ConfigurationError(
            f"{fcdn} -> {bcdn} admits no overlapping ranges"
        )

    back = bcdn_profile() if bcdn_profile is not None else create_profile(bcdn)
    boundary = back.multipart_boundary
    part_overhead = _part_overhead_upper(boundary, content_type, resource_size)
    closer = len(boundary) + 6  # "--" + boundary + "--" + CRLF
    # The exploited shapes' ranges all pairwise overlap, so any reply
    # behavior other than HONOR collapses them into one part.
    parts = n if back.reply_behavior is MultiRangeReplyBehavior.HONOR else 1
    body_upper = parts * (resource_size + part_overhead) + closer
    header_upper = max(back.client_header_block_target, 0) + CDN_HEADER_ALLOWANCE

    victim_upper = (
        model.framed_size(header_upper + body_upper) + model.connection_setup_bytes()
    )
    # The BCDN fetches the full representation once; the origin response
    # carries at least the resource body.
    attacker_lower = model.framed_size(resource_size) + model.connection_setup_bytes()

    return ObrBound(
        fcdn=fcdn,
        bcdn=bcdn,
        resource_size=resource_size,
        max_n=n,
        part_overhead_upper=part_overhead,
        victim_bytes_upper=victim_upper,
        attacker_bytes_lower=attacker_lower,
    )


def _part_overhead_upper(boundary: str, content_type: str, resource_size: int) -> int:
    """Exact upper bound on one multipart part's framing bytes
    (:meth:`~repro.http.multipart.MultipartByteranges.part_overhead`)."""
    digits = len(str(resource_size))
    delimiter = len(boundary) + 4  # "--" + boundary + CRLF
    ct_line = len("Content-Type: ") + len(content_type) + 2
    # "Content-Range: bytes <start>-<end>/<complete>" — every number has
    # at most ``digits`` digits.
    cr_line = len("Content-Range: bytes ") + 3 * digits + 2 + 2
    blank = 2
    trailing = 2  # CRLF after the part payload
    return delimiter + ct_line + cr_line + blank + trailing


@dataclass(frozen=True)
class CcfcBound:
    """Static worst-case bound for one CCFC cell (vendor × size).

    Unlike the SBR/OBR bounds, which over/under-estimate independently,
    the CCFC numbers are **exact**: they come from the closed-form
    mirror in :meth:`repro.core.ccfc.CcfcAttack.mirror`, which replays
    the byte-defining code paths (the profile's fetch flow, a real
    origin, the node's conversion/finalize helpers) at O(1) cost in the
    resource size.  ``bound == simulated factor`` therefore holds with
    equality on every cell, pinned by the cross-check tests.
    """

    vendor: str
    resource_size: int
    rounds: int
    #: Coding the origin serves under the vendor's rewrite (``None`` for
    #: the safe vendors — identity fallback, factor ~1).
    encoding: Optional[str]
    #: Exact victim-side (client-cdn) response bytes.
    victim_bytes_upper: int
    #: Exact attacker-side (cdn-origin) response bytes.
    attacker_bytes_lower: int

    @property
    def factor(self) -> float:
        """The exact amplification factor the simulation reports."""
        if self.attacker_bytes_lower <= 0:
            return 0.0
        return self.victim_bytes_upper / self.attacker_bytes_lower


def profile_ccfc_bound(
    vendor: str,
    profile_factory: Optional[ProfileFactory],
    resource_size: int,
    rounds: int = 1,
    overhead: Optional[OverheadModel] = None,
) -> CcfcBound:
    """Worst-case CCFC bound, optionally against a substituted profile.

    ``profile_factory=None`` bounds the registry vendor;
    a factory bounds the wrapped/mitigated profile under the same
    attack request (the recommendation engine's residual).
    """
    from repro.core.ccfc import CcfcAttack

    result = CcfcAttack(
        vendor,
        resource_size=resource_size,
        overhead=overhead,
        profile_factory=profile_factory,
    ).mirror(rounds=rounds)
    return CcfcBound(
        vendor=vendor,
        resource_size=resource_size,
        rounds=rounds,
        encoding=result.encoding,
        victim_bytes_upper=result.client_traffic,
        attacker_bytes_lower=result.origin_traffic,
    )


def ccfc_bound(
    vendor: str,
    resource_size: int,
    rounds: int = 1,
    overhead: Optional[OverheadModel] = None,
) -> CcfcBound:
    """Closed-form CCFC amplification for one registry vendor × size."""
    return profile_ccfc_bound(
        vendor, None, resource_size, rounds=rounds, overhead=overhead
    )


__all__ = [
    "CDN_HEADER_ALLOWANCE",
    "MULTIPART_CLOSER_ALLOWANCE",
    "MULTIPART_PART_ALLOWANCE",
    "ORIGIN_HEADER_ALLOWANCE",
    "PAD_HEADER_SLACK",
    "RESPONSE_WIRE_FLOOR",
    "CcfcBound",
    "FaultedSbrBound",
    "ObrBound",
    "ProfileFactory",
    "SbrBound",
    "ccfc_bound",
    "faulted_sbr_bound",
    "obr_bound",
    "profile_ccfc_bound",
    "profile_sbr_bound",
    "sbr_bound",
    "static_max_n",
]
