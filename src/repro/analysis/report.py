"""Severity-ranked static findings over vendors, cascades, deployments.

:func:`analyze_vendor_matrix` is the pre-simulation vulnerability
report: it classifies every registered vendor (SBR) and every FCDN×BCDN
cell (OBR) from pure configuration probes and attaches the closed-form
worst-case bounds of :mod:`repro.analysis.bounds`.  No deployment is
built and no ledger records a byte — the zero-traffic test pins this.

:func:`analyze_deployment` applies the same passes to one concrete
:class:`~repro.core.deployment.Deployment`: the chain's actual vendors,
configs, overhead model, and origin resource sizes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.core.deployment import Deployment

from repro.analysis.bounds import (
    CcfcBound,
    ObrBound,
    SbrBound,
    ccfc_bound,
    obr_bound,
    sbr_bound,
)
from repro.analysis.classify import (
    CascadeClassification,
    CcfcClassification,
    SbrClassification,
    classify_cascade,
    classify_ccfc,
    classify_sbr,
)
from repro.cdn.vendors import all_vendor_names
from repro.netsim.overhead import OverheadModel

MB = 1 << 20

#: Severity buckets by worst-case amplification factor, most severe
#: first (the report's ranking order).
SEVERITY_ORDER: Tuple[str, ...] = ("critical", "high", "medium", "low", "info")


def severity_for_factor(factor: float) -> str:
    """Bucket a worst-case amplification factor."""
    if factor >= 1000:
        return "critical"
    if factor >= 100:
        return "high"
    if factor >= 10:
        return "medium"
    if factor > 1:
        return "low"
    return "info"


@dataclass(frozen=True)
class Finding:
    """One statically-derived vulnerability (or safety) statement."""

    #: ``"sbr"``, ``"obr"``, ``"ccfc"``, or ``"safe"``.
    kind: str
    severity: str
    #: ``"azure"`` for a vendor, ``"cdn77 -> akamai"`` for a cascade.
    subject: str
    #: Exploitation mechanism (``deletion``, ``expansion``,
    #: ``stateful-deletion``, ``fetch-flow``, ``laziness+honor``, or
    #: ``none``).
    mechanism: str
    #: Closed-form worst-case amplification factor (0 for safe cells).
    factor_bound: float
    #: One-line human-readable summary.
    detail: str
    #: JSON-friendly extras: bounds, exploited cases, max n, sizes.
    data: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "subject": self.subject,
            "mechanism": self.mechanism,
            "factor_bound": round(self.factor_bound, 2),
            "detail": self.detail,
            "data": self.data,
        }


@dataclass(frozen=True)
class AnalysisReport:
    """All findings from one static-analysis run, severity-ranked."""

    findings: Tuple[Finding, ...]
    #: SBR resource size the bounds were computed for.
    resource_size: int
    #: OBR resource size the cascade bounds were computed for.
    obr_resource_size: int
    #: CCFC resource size the compression bounds were computed for.
    ccfc_resource_size: int = 10 * MB

    @property
    def vulnerable(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.kind != "safe")

    @property
    def safe(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.kind == "safe")

    def by_kind(self, kind: str) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.kind == kind)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "resource_size": self.resource_size,
                "obr_resource_size": self.obr_resource_size,
                "ccfc_resource_size": self.ccfc_resource_size,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=indent,
            sort_keys=False,
        )


def _format_size(size: int) -> str:
    if size >= MB and size % MB == 0:
        return f"{size // MB}MB"
    return f"{size}B"


def _rank(findings: Sequence[Finding]) -> Tuple[Finding, ...]:
    """Severity-ranked: most severe bucket first, larger bound first."""
    return tuple(
        sorted(
            findings,
            key=lambda f: (SEVERITY_ORDER.index(f.severity), -f.factor_bound, f.subject),
        )
    )


def _sbr_finding(
    classification: SbrClassification,
    resource_size: int,
    overhead: Optional[OverheadModel],
) -> Finding:
    vendor = classification.vendor
    if not classification.vulnerable:
        return Finding(
            kind="safe",
            severity="info",
            subject=vendor,
            mechanism="none",
            factor_bound=0.0,
            detail=f"{classification.display_name} forwards ranges lazily; no SBR vector",
        )
    bound: SbrBound = sbr_bound(vendor, resource_size, overhead=overhead)
    return Finding(
        kind="sbr",
        severity=severity_for_factor(bound.factor),
        subject=vendor,
        mechanism=classification.mechanism,
        factor_bound=bound.factor,
        detail=(
            f"{classification.display_name} amplifies via {classification.mechanism}: "
            f"<= {bound.factor:.0f}x at {_format_size(resource_size)}"
        ),
        data={
            "resource_size": resource_size,
            "range_cases": list(bound.range_cases),
            "origin_fetches": bound.origin_fetches,
            "origin_bytes_upper": bound.origin_bytes_upper,
            "client_bytes_lower": bound.client_bytes_lower,
        },
    )


def _obr_finding(
    classification: CascadeClassification,
    resource_size: int,
    overhead: Optional[OverheadModel],
) -> Finding:
    subject = f"{classification.fcdn} -> {classification.bcdn}"
    mechanism = "laziness+honor" + (
        " (bypass)" if classification.requires_bypass else ""
    )
    bound: ObrBound = obr_bound(
        classification.fcdn,
        classification.bcdn,
        resource_size=resource_size,
        overhead=overhead,
    )
    return Finding(
        kind="obr",
        severity=severity_for_factor(bound.factor),
        subject=subject,
        mechanism=mechanism,
        factor_bound=bound.factor,
        detail=(
            f"{classification.fcdn} forwards {len(classification.lazy_probes)} "
            f"overlapping shapes verbatim; {classification.bcdn} honors them "
            f"(max n = {bound.max_n}, <= {bound.factor:.0f}x)"
        ),
        data={
            "resource_size": resource_size,
            "max_n": bound.max_n,
            "part_overhead_upper": bound.part_overhead_upper,
            "victim_bytes_upper": bound.victim_bytes_upper,
            "attacker_bytes_lower": bound.attacker_bytes_lower,
            "requires_bypass": classification.requires_bypass,
        },
    )


#: Safe-mechanism phrasing for the CCFC findings.
_CCFC_SAFE_DETAILS = {
    "forward": "forwards Accept-Encoding untouched; no CCFC vector",
    "strip": "strips Accept-Encoding toward the origin; no CCFC vector",
    "normalize": "normalizes Accept-Encoding to the client's codings; no CCFC vector",
    "rewrite-no-decompress": (
        "rewrites Accept-Encoding but relays compressed bodies as-is; no CCFC vector"
    ),
    "rewrite-incompressible": (
        "rewrites Accept-Encoding to codings that do not compress; no CCFC vector"
    ),
}


def _ccfc_finding(
    classification: CcfcClassification,
    resource_size: int,
    overhead: Optional[OverheadModel],
) -> Finding:
    vendor = classification.vendor
    if not classification.vulnerable:
        detail = _CCFC_SAFE_DETAILS.get(
            classification.mechanism, "has no compression-conversion vector"
        )
        return Finding(
            kind="safe",
            severity="info",
            subject=vendor,
            mechanism=classification.mechanism,
            factor_bound=0.0,
            detail=f"{classification.display_name} {detail}",
            data={
                "attack": "ccfc",
                "encoding_policy": classification.encoding_policy.value,
                "edge_decompresses": classification.edge_decompresses,
            },
        )
    bound: CcfcBound = ccfc_bound(vendor, resource_size, overhead=overhead)
    codings = ", ".join(classification.edge_accept_encoding)
    return Finding(
        kind="ccfc",
        severity=severity_for_factor(bound.factor),
        subject=vendor,
        mechanism=classification.mechanism,
        factor_bound=bound.factor,
        detail=(
            f"{classification.display_name} rewrites Accept-Encoding to "
            f"{codings} and inflates at the edge: "
            f"<= {bound.factor:.0f}x at {_format_size(resource_size)}"
        ),
        data={
            "attack": "ccfc",
            "resource_size": resource_size,
            "encoding": bound.encoding,
            "edge_accept_encoding": list(classification.edge_accept_encoding),
            "victim_bytes_upper": bound.victim_bytes_upper,
            "attacker_bytes_lower": bound.attacker_bytes_lower,
        },
    )


def analyze_vendor_matrix(
    resource_size: int = 10 * MB,
    obr_resource_size: int = 1024,
    ccfc_resource_size: int = 10 * MB,
    vendors: Optional[Sequence[str]] = None,
    sbr_overhead: Optional[OverheadModel] = None,
    obr_overhead: Optional[OverheadModel] = None,
    ccfc_overhead: Optional[OverheadModel] = None,
) -> AnalysisReport:
    """Statically audit every vendor and every FCDN×BCDN cell.

    Purely configuration-driven: decision-table probes plus closed-form
    bounds.  SBR and CCFC bounds default to payload-only accounting and
    OBR bounds to TCP-framed accounting, matching the simulated attacks'
    defaults.  Every vendor gets a CCFC finding — ``kind="ccfc"`` when
    vulnerable, a ``kind="safe"`` row tagged ``data["attack"]="ccfc"``
    otherwise — so compression behavior is classified for the whole
    registry.
    """
    names = list(vendors) if vendors is not None else all_vendor_names()
    findings: List[Finding] = []

    for vendor in names:
        findings.append(
            _sbr_finding(classify_sbr(vendor), resource_size, sbr_overhead)
        )
        findings.append(
            _ccfc_finding(classify_ccfc(vendor), ccfc_resource_size, ccfc_overhead)
        )

    for fcdn in names:
        for bcdn in names:
            if fcdn == bcdn:
                continue
            cascade = classify_cascade(fcdn, bcdn, resource_size=obr_resource_size)
            if not cascade.vulnerable:
                continue
            findings.append(_obr_finding(cascade, obr_resource_size, obr_overhead))

    return AnalysisReport(
        findings=_rank(findings),
        resource_size=resource_size,
        obr_resource_size=obr_resource_size,
        ccfc_resource_size=ccfc_resource_size,
    )


def analyze_deployment(
    deployment: Deployment,
    resource_sizes: Optional[Sequence[int]] = None,
) -> AnalysisReport:
    """Statically audit one wired deployment without sending traffic.

    Reads the chain's vendors and per-node configs, the ledger's
    overhead model, and the origin store's resource sizes; classifies
    each node (SBR) and each adjacent pair (OBR) and bounds them with
    the deployment's own overhead model.
    """
    overhead = deployment.ledger.overhead
    store = deployment.origin.store
    sizes = (
        list(resource_sizes)
        if resource_sizes is not None
        else sorted({store.get(path).size for path in store.paths()})
    ) or [10 * MB]

    findings: List[Finding] = []
    for node in deployment.nodes:
        classification = classify_sbr(node.profile.name, config=node.config)
        ccfc_classification = classify_ccfc(node.profile.name)
        for size in sizes:
            findings.append(_sbr_finding(classification, size, overhead))
        findings.append(_ccfc_finding(ccfc_classification, max(sizes), overhead))

    for front, back in zip(deployment.nodes, deployment.nodes[1:]):
        if front.profile.name == back.profile.name:
            continue
        cascade = classify_cascade(
            front.profile.name,
            back.profile.name,
            resource_size=sizes[0],
            fcdn_config=front.config,
        )
        if not cascade.vulnerable:
            continue
        findings.append(_obr_finding(cascade, sizes[0], overhead))

    return AnalysisReport(
        findings=_rank(findings),
        resource_size=max(sizes),
        obr_resource_size=sizes[0],
        ccfc_resource_size=max(sizes),
    )


def render_findings_table(report: AnalysisReport) -> str:
    """The findings as the repo's standard ASCII table."""
    from repro.reporting.render import render_table

    rows = [
        [
            finding.severity,
            finding.kind,
            finding.subject,
            finding.mechanism,
            f"{finding.factor_bound:.0f}x" if finding.factor_bound else "-",
            finding.detail,
        ]
        for finding in report.findings
    ]
    return render_table(
        ["Severity", "Kind", "Subject", "Mechanism", "Bound", "Detail"], rows
    )
