"""Static vulnerability classification from vendor configuration.

Every answer here is derived by interrogating a vendor profile's *pure*
decision surface — :meth:`~repro.cdn.vendors.base.VendorProfile.forward_decision`,
the multi-range reply behavior, the stateful second-request policy, and
the ``amplifies_via_fetch_flow`` flag — the way the behavior matrix
(:mod:`repro.cdn.vendors.matrix`) does.  No deployment is wired, no
connection is opened, no ledger records a byte: this is the "audit the
config, not the wire" pass the paper performs analytically in §IV before
measuring anything.

* SBR (§IV-B): a vendor is vulnerable when any single-range shape makes
  it *Delete* or *Expand* the Range header (Table I), when its second
  sighting of an identical request does (KeyCDN), or when its fetch flow
  pulls the full representation despite a lazy decision table
  (StackPath).
* OBR (§IV-C): a cascade is vulnerable when the front CDN forwards an
  overlapping multi-range shape *unchanged* (Laziness, Table II) and the
  back CDN *honors* overlapping ranges with a multipart reply
  (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.cdn.multirange import MultiRangeReplyBehavior
from repro.cdn.policy import ForwardPolicy
from repro.cdn.vendors import create_profile
from repro.cdn.vendors.base import (
    EncodingPolicy,
    VendorConfig,
    VendorContext,
    VendorProfile,
)
from repro.http.message import HttpRequest
from repro.http.ranges import try_parse_range_header

#: Builds a fresh profile per probe (profiles are stateful).  Passing one
#: lets every classification run against a wrapped/mitigated profile
#: instead of the registry vendor it names.
ProfileFactory = Callable[[], VendorProfile]

MB = 1 << 20

#: Single-range probe shapes (Range value templates), covering Table I's
#: three formats.  Size-dependent vendors (Azure, Huawei) flip policy
#: with the resource size, so every shape is probed per size regime.
SINGLE_RANGE_SHAPES: Tuple[str, ...] = ("bytes=0-0", "bytes=5-", "bytes=-1")

#: Overlapping multi-range probe shapes, covering Table II and the
#: exploited leading-spec variants of Table V (CDN77's suffix lead,
#: CDNsun's ``1-`` lead).
MULTI_RANGE_SHAPES: Tuple[str, ...] = (
    "bytes=0-,0-,0-",
    "bytes=-1024,0-,0-",
    "bytes=1-,0-,0-",
)

#: Size regimes probed when the caller does not pin one: below and above
#: every size threshold the profiles encode (Azure's 8 MB, Huawei's
#: 10 MB).
DEFAULT_PROBE_SIZES: Tuple[int, ...] = (1 * MB, 25 * MB)


@dataclass(frozen=True)
class ProbeDecision:
    """One vendor's forwarding decision for one probed Range shape."""

    range_value: str
    resource_size: int
    policy: ForwardPolicy
    forwarded_range: Optional[str]

    @property
    def amplifying(self) -> bool:
        """Deletion/Expansion — the SBR-exploitable policies."""
        return self.policy in (ForwardPolicy.DELETION, ForwardPolicy.EXPANSION)

    @property
    def lazy_unchanged(self) -> bool:
        """Forwarded verbatim — the OBR front-end requirement."""
        return (
            self.policy is ForwardPolicy.LAZINESS
            and self.forwarded_range == self.range_value
        )


def probe_decision(
    vendor: str,
    range_value: str,
    resource_size: int,
    config: Optional[VendorConfig] = None,
    profile_factory: Optional[ProfileFactory] = None,
) -> ProbeDecision:
    """Ask a fresh profile for its first-sighting forwarding decision."""
    profile = profile_factory() if profile_factory is not None else create_profile(vendor)
    ctx = VendorContext(
        config=config if config is not None else profile.effective_config(),
        resource_size_hint=resource_size,
    )
    decision = profile.forward_decision(
        _probe_request(range_value), try_parse_range_header(range_value), ctx
    )
    return ProbeDecision(
        range_value=range_value,
        resource_size=resource_size,
        policy=decision.policy,
        forwarded_range=decision.forwarded_range,
    )


def second_request_decision(
    vendor: str,
    range_value: str,
    resource_size: int,
    config: Optional[VendorConfig] = None,
    profile_factory: Optional[ProfileFactory] = None,
) -> ProbeDecision:
    """The decision for the *second identical* request on one profile
    instance (KeyCDN's second-sighting Deletion)."""
    profile = profile_factory() if profile_factory is not None else create_profile(vendor)
    ctx = VendorContext(
        config=config if config is not None else profile.effective_config(),
        resource_size_hint=resource_size,
    )
    request = _probe_request(range_value)
    spec = try_parse_range_header(range_value)
    profile.forward_decision(request, spec, ctx)
    decision = profile.forward_decision(request, spec, ctx)
    return ProbeDecision(
        range_value=range_value,
        resource_size=resource_size,
        policy=decision.policy,
        forwarded_range=decision.forwarded_range,
    )


@dataclass(frozen=True)
class SbrClassification:
    """Whether (and why) one vendor is SBR-vulnerable."""

    vendor: str
    display_name: str
    #: Probes whose first-sighting decision already amplifies.
    amplifying_probes: Tuple[ProbeDecision, ...]
    #: Probes that amplify only on the second identical request.
    stateful_probes: Tuple[ProbeDecision, ...]
    #: StackPath-style amplification hidden in the fetch flow.
    fetch_flow_amplifies: bool

    @property
    def vulnerable(self) -> bool:
        return bool(
            self.amplifying_probes or self.stateful_probes or self.fetch_flow_amplifies
        )

    @property
    def mechanism(self) -> str:
        """The dominant exploitation mechanism, for the findings report."""
        if any(p.policy is ForwardPolicy.EXPANSION for p in self.amplifying_probes):
            return "expansion"
        if self.amplifying_probes:
            return "deletion"
        if self.stateful_probes:
            return "stateful-deletion"
        if self.fetch_flow_amplifies:
            return "fetch-flow"
        return "none"


def classify_sbr(
    vendor: str,
    resource_sizes: Tuple[int, ...] = DEFAULT_PROBE_SIZES,
    config: Optional[VendorConfig] = None,
    profile_factory: Optional[ProfileFactory] = None,
) -> SbrClassification:
    """Statically classify one vendor's SBR susceptibility (Table I).

    ``profile_factory`` substitutes a wrapped profile (e.g. a
    ``MitigatedProfile``) for the registry vendor — the recommendation
    engine uses this to prove a mitigation removes the classification.
    """
    exemplar = (
        profile_factory() if profile_factory is not None else create_profile(vendor)
    )
    amplifying = []
    stateful = []
    for size in resource_sizes:
        for shape in SINGLE_RANGE_SHAPES:
            first = probe_decision(
                vendor, shape, size, config=config, profile_factory=profile_factory
            )
            if first.amplifying:
                amplifying.append(first)
                continue
            second = second_request_decision(
                vendor, shape, size, config=config, profile_factory=profile_factory
            )
            if second.amplifying:
                stateful.append(second)
    return SbrClassification(
        vendor=vendor,
        display_name=exemplar.display_name,
        amplifying_probes=tuple(amplifying),
        stateful_probes=tuple(stateful),
        fetch_flow_amplifies=exemplar.amplifies_via_fetch_flow,
    )


def classify_obr_frontend(
    vendor: str,
    resource_size: int = 1024,
    config: Optional[VendorConfig] = None,
) -> Tuple[ProbeDecision, ...]:
    """The overlapping multi-range shapes ``vendor`` forwards unchanged
    (Table II membership evidence; empty when unusable as an FCDN)."""
    return tuple(
        probe
        for shape in MULTI_RANGE_SHAPES
        for probe in (probe_decision(vendor, shape, resource_size, config=config),)
        if probe.lazy_unchanged
    )


def frontend_requires_bypass(vendor: str) -> bool:
    """True when the vendor is lazy only under a cache-bypass
    configuration (Cloudflare's Table II footnote)."""
    if classify_obr_frontend(vendor):
        return False
    return bool(
        classify_obr_frontend(vendor, config=VendorConfig(bypass_cache=True))
    )


@dataclass(frozen=True)
class ObrBackendFacts:
    """The back-end half of the OBR requirement (Table III)."""

    vendor: str
    reply_behavior: MultiRangeReplyBehavior
    reply_max_parts: Optional[int]
    multipart_boundary: str

    @property
    def honors_overlapping(self) -> bool:
        return self.reply_behavior is MultiRangeReplyBehavior.HONOR


def classify_obr_backend(vendor: str) -> ObrBackendFacts:
    """Read the reply-behavior facts off the profile class."""
    profile_cls = type(create_profile(vendor))
    return ObrBackendFacts(
        vendor=vendor,
        reply_behavior=profile_cls.reply_behavior,
        reply_max_parts=profile_cls.reply_max_parts,
        multipart_boundary=profile_cls.multipart_boundary,
    )


@dataclass(frozen=True)
class CascadeClassification:
    """Whether one FCDN × BCDN cell is OBR-vulnerable (Tables II+III)."""

    fcdn: str
    bcdn: str
    #: Multi-range shapes the FCDN forwards verbatim (possibly under
    #: bypass configuration).
    lazy_probes: Tuple[ProbeDecision, ...]
    #: The FCDN is lazy only with cache bypass configured (Cloudflare).
    requires_bypass: bool
    backend: ObrBackendFacts

    @property
    def vulnerable(self) -> bool:
        return bool(self.lazy_probes) and self.backend.honors_overlapping


def classify_cascade(
    fcdn: str,
    bcdn: str,
    resource_size: int = 1024,
    fcdn_config: Optional[VendorConfig] = None,
) -> CascadeClassification:
    """Statically classify one cascade cell, with the Cloudflare bypass
    fallback the paper's Table V setup uses."""
    lazy = classify_obr_frontend(fcdn, resource_size, config=fcdn_config)
    requires_bypass = False
    if not lazy and fcdn_config is None and frontend_requires_bypass(fcdn):
        lazy = classify_obr_frontend(
            fcdn, resource_size, config=VendorConfig(bypass_cache=True)
        )
        requires_bypass = True
    return CascadeClassification(
        fcdn=fcdn,
        bcdn=bcdn,
        lazy_probes=lazy,
        requires_bypass=requires_bypass,
        backend=classify_obr_backend(bcdn),
    )


@dataclass(frozen=True)
class CcfcClassification:
    """Whether (and why) one vendor is CCFC-vulnerable.

    Pure decision-table read (arXiv 2409.00712 Table 3): the vendor's
    ``Accept-Encoding`` treatment, its edge decompression policy, and
    the best compression ratio among the codings it requests upstream.
    """

    vendor: str
    display_name: str
    encoding_policy: EncodingPolicy
    edge_accept_encoding: Tuple[str, ...]
    edge_decompresses: bool
    #: Smallest compression ratio among the upstream-requested codings —
    #: the inflation driver (``None`` when the edge requests nothing).
    min_ratio: Optional[float]

    @property
    def vulnerable(self) -> bool:
        """Rewrite + edge decompression + a coding that actually shrinks."""
        return (
            self.encoding_policy is EncodingPolicy.REWRITE
            and self.edge_decompresses
            and self.min_ratio is not None
            and self.min_ratio < 1.0
        )

    @property
    def mechanism(self) -> str:
        """The exploitation (or safety) mechanism, for the findings report."""
        if self.encoding_policy is EncodingPolicy.REWRITE:
            if not self.edge_decompresses:
                return "rewrite-no-decompress"
            if self.min_ratio is None or self.min_ratio >= 1.0:
                return "rewrite-incompressible"
            return "rewrite+decompress"
        return self.encoding_policy.value


def classify_ccfc(
    vendor: str,
    profile_factory: Optional[ProfileFactory] = None,
) -> CcfcClassification:
    """Statically classify one vendor's CCFC susceptibility.

    A vendor amplifies exactly when it *rewrites* the client's
    ``Accept-Encoding`` toward the origin, *decompresses* at the edge
    for clients that cannot accept the stored coding, and at least one
    requested coding actually compresses (ratio < 1).  Forwarding or
    stripping vendors let the origin fall back to identity; Tencent's
    rewrite-without-decompression relays the compressed bytes as-is.
    """
    profile = (
        profile_factory() if profile_factory is not None else create_profile(vendor)
    )
    ratios = [
        profile.compression_ratios.get(coding.lower(), 1.0)
        for coding in profile.edge_accept_encoding
    ]
    return CcfcClassification(
        vendor=vendor,
        display_name=profile.display_name,
        encoding_policy=profile.encoding_policy,
        edge_accept_encoding=tuple(profile.edge_accept_encoding),
        edge_decompresses=profile.edge_decompresses,
        min_ratio=min(ratios) if ratios else None,
    )


def _probe_request(range_value: str) -> HttpRequest:
    return HttpRequest(
        "GET",
        "/probe.bin",
        headers=[("Host", "victim.example"), ("Range", range_value)],
    )
