"""Defense recommendation engine (paper §VI-C, applied per finding).

The paper closes with implementation advice — switch to Laziness, bound
expansion to a few KB, enforce RFC 7233 §6.1 against overlapping ranges
— but leaves "which fix, where" to the reader.  This module turns the
static findings of :func:`~repro.analysis.report.analyze_vendor_matrix`
into *actionable, verified* recommendations:

1. for each vulnerable SBR vendor and each vulnerable FCDN×BCDN
   cascade, enumerate the applicable mitigations from
   :mod:`repro.defense.mitigations`, ordered by deployment cost
   (config-only change < header guard < fetch-flow change);
2. wrap the vendor in the corresponding mitigated profile and re-run
   the closed-form bounds (:func:`~repro.analysis.bounds.profile_sbr_bound`,
   :func:`~repro.analysis.bounds.obr_bound`) under the wrapper;
3. recommend the *cheapest* mitigation whose residual worst-case factor
   falls below the threshold (default: the "low" severity boundary),
   keeping the rejected cheaper options — with their residual factors —
   in the report so the cost/benefit trade-off stays visible.

Every recommendation can be cross-validated dynamically with
:func:`verify_recommendations`: a quick simulation grid runs the actual
attack against the mitigated profile and checks the measured factor
never exceeds the residual bound (the same soundness contract the clean
bounds carry).

Retry-aware residuals (``with_retries=True``) are *informational*: the
faulted denominator collapses to the bare response-wire floor, which no
forwarding policy can pad away, so sufficiency is always judged on the
clean residual while the faulted factor shows what a retry budget still
costs under origin faults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.bounds import (
    FaultedSbrBound,
    ProfileFactory,
    obr_bound,
    profile_ccfc_bound,
    profile_sbr_bound,
    static_max_n,
)
from repro.analysis.report import (
    AnalysisReport,
    Finding,
    analyze_vendor_matrix,
    severity_for_factor,
)
from repro.cdn.vendors import create_profile
from repro.defense.mitigations import (
    with_bounded_expansion,
    with_encoding_normalization,
    with_encoding_passthrough,
    with_laziness,
    with_overlap_rejection,
    with_slicing,
)
from repro.errors import ConfigurationError
from repro.obs.metrics import current_metrics

MB = 1 << 20

#: Default residual threshold: the "low"/"medium" severity boundary.  A
#: mitigation is *sufficient* when the residual worst-case factor stays
#: strictly below it (residual severity "low" or better).
DEFAULT_THRESHOLD = 10.0

#: Deployment-cost classes, cheapest first: flipping a config option
#: (G-Core's slice switch, an expansion cap) beats adding an ingress
#: header guard, which beats restructuring the fetch flow.
COST_CONFIG_ONLY = 0
COST_HEADER_GUARD = 1
COST_FETCH_FLOW = 2

COST_LABELS: Dict[int, str] = {
    COST_CONFIG_ONLY: "config-only",
    COST_HEADER_GUARD: "header-guard",
    COST_FETCH_FLOW: "fetch-flow",
}


@dataclass(frozen=True)
class MitigationSpec:
    """One applicable mitigation, with its place in the cost order."""

    #: Wrapper name: ``laziness``, ``bounded-expansion``,
    #: ``overlap-rejection``, or ``slicing``.
    name: str
    #: Which side of the deployment it wraps: ``cdn`` (SBR), ``fcdn``
    #: or ``bcdn`` (OBR).
    target: str
    #: Cost class (``COST_*``).
    cost: int
    #: Total evaluation order: candidates are tried rank-ascending and
    #: the first sufficient one wins, so rank must never contradict cost.
    rank: int
    description: str

    @property
    def cost_label(self) -> str:
        return COST_LABELS[self.cost]

    @property
    def label(self) -> str:
        """``laziness@cdn`` — the name used in tables and metrics."""
        return f"{self.name}@{self.target}"


#: SBR candidates, cheapest first.  Bounded expansion is the smallest
#: behavioral change (prefetching survives); Laziness gives up
#: range-driven caching but is still a config flip; the RFC 7233 guard
#: adds ingress rejection on top of Laziness; slicing restructures the
#: fetch flow entirely.
SBR_MITIGATIONS: Tuple[MitigationSpec, ...] = (
    MitigationSpec(
        "bounded-expansion",
        "cdn",
        COST_CONFIG_ONLY,
        0,
        "cap range expansion at 8KB of slack (paper 6-C)",
    ),
    MitigationSpec(
        "laziness",
        "cdn",
        COST_CONFIG_ONLY,
        1,
        "forward the Range header unchanged (G-Core's fix)",
    ),
    MitigationSpec(
        "overlap-rejection",
        "cdn",
        COST_HEADER_GUARD,
        2,
        "lazy forwarding plus the RFC 7233 6.1 ingress guard",
    ),
    MitigationSpec(
        "slicing",
        "cdn",
        COST_FETCH_FLOW,
        3,
        "fetch fixed-size slices and cache them independently",
    ),
)

#: OBR candidates, cheapest first.  The honoring back end is the root
#: cause (Table III), so guarding it outranks guarding the front; the
#: slice flow coalesces too but costs a fetch-flow change.
OBR_MITIGATIONS: Tuple[MitigationSpec, ...] = (
    MitigationSpec(
        "overlap-rejection",
        "bcdn",
        COST_HEADER_GUARD,
        0,
        "RFC 7233 6.1 guard + coalescing replies at the back end",
    ),
    MitigationSpec(
        "overlap-rejection",
        "fcdn",
        COST_HEADER_GUARD,
        1,
        "RFC 7233 6.1 guard at the front end (CDN77's fix)",
    ),
    MitigationSpec(
        "slicing",
        "bcdn",
        COST_FETCH_FLOW,
        2,
        "slice-based fetching at the back end (coalescing replies)",
    ),
)

#: CCFC candidates, cheapest first.  Pass-through is a pure config flip
#: (stop rewriting Accept-Encoding, stop decompressing); normalization
#: keeps edge decompression support but clamps the upstream negotiation
#: to what the client offered, which costs an ingress header guard.
CCFC_MITIGATIONS: Tuple[MitigationSpec, ...] = (
    MitigationSpec(
        "encoding-passthrough",
        "cdn",
        COST_CONFIG_ONLY,
        0,
        "forward the client's Accept-Encoding untouched (identity pass-through)",
    ),
    MitigationSpec(
        "encoding-normalization",
        "cdn",
        COST_HEADER_GUARD,
        1,
        "clamp upstream Accept-Encoding to codings the client accepts",
    ),
)

_WRAPPERS = {
    "laziness": with_laziness,
    "bounded-expansion": with_bounded_expansion,
    "overlap-rejection": with_overlap_rejection,
    "slicing": with_slicing,
    "encoding-passthrough": with_encoding_passthrough,
    "encoding-normalization": with_encoding_normalization,
}


def mitigation_profile_factory(vendor: str, mitigation: str) -> ProfileFactory:
    """A fresh-instance factory wrapping ``vendor`` in ``mitigation``."""
    if mitigation not in _WRAPPERS:
        raise ConfigurationError(f"unknown mitigation {mitigation!r}")
    wrapper = _WRAPPERS[mitigation]
    return lambda: wrapper(create_profile(vendor))


@dataclass(frozen=True)
class MitigationOption:
    """One evaluated (finding, mitigation) pair."""

    spec: MitigationSpec
    #: Residual worst-case factor under the mitigated profile.
    residual_factor: float
    #: Retry-aware residual (informational; ``None`` unless requested).
    faulted_residual_factor: Optional[float]
    threshold: float

    @property
    def residual_severity(self) -> str:
        return severity_for_factor(self.residual_factor)

    @property
    def sufficient(self) -> bool:
        return self.residual_factor < self.threshold

    def to_dict(self) -> Dict[str, object]:
        return {
            "mitigation": self.spec.name,
            "target": self.spec.target,
            "label": self.spec.label,
            "cost": self.spec.cost_label,
            "description": self.spec.description,
            "residual_factor": round(self.residual_factor, 2),
            "residual_severity": self.residual_severity,
            "sufficient": self.sufficient,
            "faulted_residual_factor": (
                round(self.faulted_residual_factor, 2)
                if self.faulted_residual_factor is not None
                else None
            ),
        }


@dataclass(frozen=True)
class Recommendation:
    """The cheapest sufficient mitigation for one vulnerable finding."""

    finding: Finding
    #: The winning option (``None`` only if no candidate clears the
    #: threshold — the report flags that loudly).
    chosen: Optional[MitigationOption]
    #: Cheaper options that were evaluated and found insufficient.
    rejected: Tuple[MitigationOption, ...]
    threshold: float

    @property
    def kind(self) -> str:
        return self.finding.kind

    @property
    def subject(self) -> str:
        return self.finding.subject

    @property
    def resolved(self) -> bool:
        return self.chosen is not None and self.chosen.sufficient

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.finding.kind,
            "subject": self.finding.subject,
            "severity": self.finding.severity,
            "mechanism": self.finding.mechanism,
            "clean_factor": round(self.finding.factor_bound, 2),
            "chosen": self.chosen.to_dict() if self.chosen is not None else None,
            "rejected": [option.to_dict() for option in self.rejected],
        }


@dataclass(frozen=True)
class RecommendationReport:
    """Severity-ranked recommendations for every vulnerable finding."""

    recommendations: Tuple[Recommendation, ...]
    threshold: float
    resource_size: int
    obr_resource_size: int
    with_retries: bool
    ccfc_resource_size: int = 10 * MB

    @property
    def unresolved(self) -> Tuple[Recommendation, ...]:
        return tuple(r for r in self.recommendations if not r.resolved)

    @property
    def all_resolved(self) -> bool:
        return not self.unresolved

    def by_kind(self, kind: str) -> Tuple[Recommendation, ...]:
        return tuple(r for r in self.recommendations if r.kind == kind)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {
                "threshold": self.threshold,
                "resource_size": self.resource_size,
                "obr_resource_size": self.obr_resource_size,
                "ccfc_resource_size": self.ccfc_resource_size,
                "with_retries": self.with_retries,
                "all_resolved": self.all_resolved,
                "recommendations": [r.to_dict() for r in self.recommendations],
            },
            indent=indent,
            sort_keys=False,
        )


# ---------------------------------------------------------------------------
# Residual bounds per (finding, mitigation)
# ---------------------------------------------------------------------------


def sbr_residual_bound(
    vendor: str, mitigation: str, resource_size: int
) -> float:
    """Worst-case SBR factor after wrapping ``vendor`` in ``mitigation``."""
    factory = mitigation_profile_factory(vendor, mitigation)
    return profile_sbr_bound(vendor, factory, resource_size).factor


def sbr_faulted_residual_bound(
    vendor: str, mitigation: str, resource_size: int
) -> float:
    """Retry-aware residual: the residual bound times the vendor's stock
    retry budget, over the bare-wire denominator (informational)."""
    from repro.faults.retry import retry_policy_for

    factory = mitigation_profile_factory(vendor, mitigation)
    base = profile_sbr_bound(vendor, factory, resource_size)
    return FaultedSbrBound(
        base=base, max_attempts=retry_policy_for(vendor).max_attempts
    ).factor


def ccfc_residual_bound(
    vendor: str, mitigation: str, resource_size: int
) -> float:
    """Worst-case CCFC factor after wrapping ``vendor`` in ``mitigation``.

    CCFC bounds are exact (the closed form replays the byte-defining
    paths), so the residual is the factor the mitigated edge actually
    delivers — ~1.0 for pass-through and normalization, since the origin
    then only serves codings the client accepts."""
    factory = mitigation_profile_factory(vendor, mitigation)
    return profile_ccfc_bound(vendor, factory, resource_size).factor


def _obr_factories(
    fcdn: str, bcdn: str, spec: MitigationSpec
) -> Tuple[Optional[ProfileFactory], Optional[ProfileFactory]]:
    if spec.target == "fcdn":
        return mitigation_profile_factory(fcdn, spec.name), None
    return None, mitigation_profile_factory(bcdn, spec.name)


def obr_residual_bound(
    fcdn: str, bcdn: str, spec: MitigationSpec, resource_size: int
) -> float:
    """Worst-case OBR factor after applying ``spec`` to one cascade side.

    0.0 when the mitigated cascade admits no overlapping ranges at all
    (the guard rejects every exploitable shape outright).
    """
    front, back = _obr_factories(fcdn, bcdn, spec)
    try:
        return obr_bound(
            fcdn,
            bcdn,
            resource_size=resource_size,
            fcdn_profile=front,
            bcdn_profile=back,
        ).factor
    except ConfigurationError:
        return 0.0


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


def _pick(
    options: Sequence[MitigationOption],
) -> Tuple[Optional[MitigationOption], Tuple[MitigationOption, ...]]:
    """First sufficient option in cost order; everything cheaper that
    failed becomes the rejected list."""
    rejected: List[MitigationOption] = []
    for option in options:
        if option.sufficient:
            return option, tuple(rejected)
        rejected.append(option)
    return None, tuple(rejected)


def _record(recommendation: Recommendation) -> None:
    metrics = current_metrics()
    if metrics is None:
        return
    evaluated = list(recommendation.rejected)
    if recommendation.chosen is not None:
        evaluated.append(recommendation.chosen)
    for option in evaluated:
        metrics.record_recommendation(
            kind=recommendation.kind,
            mitigation=option.spec.label,
            sufficient=option.sufficient,
            residual_factor=option.residual_factor,
        )


def _recommend_sbr(
    finding: Finding,
    resource_size: int,
    threshold: float,
    with_retries: bool,
) -> Recommendation:
    vendor = finding.subject
    options = []
    for spec in SBR_MITIGATIONS:
        residual = sbr_residual_bound(vendor, spec.name, resource_size)
        faulted = (
            sbr_faulted_residual_bound(vendor, spec.name, resource_size)
            if with_retries
            else None
        )
        options.append(
            MitigationOption(
                spec=spec,
                residual_factor=residual,
                faulted_residual_factor=faulted,
                threshold=threshold,
            )
        )
    chosen, rejected = _pick(options)
    return Recommendation(
        finding=finding, chosen=chosen, rejected=rejected, threshold=threshold
    )


def _recommend_ccfc(
    finding: Finding, ccfc_resource_size: int, threshold: float
) -> Recommendation:
    vendor = finding.subject
    options = []
    for spec in CCFC_MITIGATIONS:
        residual = ccfc_residual_bound(vendor, spec.name, ccfc_resource_size)
        options.append(
            MitigationOption(
                spec=spec,
                residual_factor=residual,
                faulted_residual_factor=None,
                threshold=threshold,
            )
        )
    chosen, rejected = _pick(options)
    return Recommendation(
        finding=finding, chosen=chosen, rejected=rejected, threshold=threshold
    )


def _recommend_obr(
    finding: Finding, obr_resource_size: int, threshold: float
) -> Recommendation:
    fcdn, bcdn = finding.subject.split(" -> ")
    options = []
    for spec in OBR_MITIGATIONS:
        residual = obr_residual_bound(fcdn, bcdn, spec, obr_resource_size)
        options.append(
            MitigationOption(
                spec=spec,
                residual_factor=residual,
                faulted_residual_factor=None,
                threshold=threshold,
            )
        )
    chosen, rejected = _pick(options)
    return Recommendation(
        finding=finding, chosen=chosen, rejected=rejected, threshold=threshold
    )


def recommend(
    resource_size: int = 10 * MB,
    obr_resource_size: int = 1024,
    threshold: float = DEFAULT_THRESHOLD,
    with_retries: bool = False,
    report: Optional[AnalysisReport] = None,
    ccfc_resource_size: int = 10 * MB,
) -> RecommendationReport:
    """Recommend the cheapest sufficient mitigation per vulnerable finding.

    ``report`` reuses an existing static analysis (it must have been
    computed for the same sizes); by default the full vendor matrix is
    analyzed first.  Recommendations keep the report's severity ranking.
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be > 0, got {threshold}")
    if report is None:
        report = analyze_vendor_matrix(
            resource_size=resource_size,
            obr_resource_size=obr_resource_size,
            ccfc_resource_size=ccfc_resource_size,
        )
    recommendations: List[Recommendation] = []
    for finding in report.vulnerable:
        if finding.kind == "sbr":
            recommendation = _recommend_sbr(
                finding, resource_size, threshold, with_retries
            )
        elif finding.kind == "ccfc":
            recommendation = _recommend_ccfc(
                finding, ccfc_resource_size, threshold
            )
        else:
            recommendation = _recommend_obr(finding, obr_resource_size, threshold)
        _record(recommendation)
        recommendations.append(recommendation)
    return RecommendationReport(
        recommendations=tuple(recommendations),
        threshold=threshold,
        resource_size=resource_size,
        obr_resource_size=obr_resource_size,
        with_retries=with_retries,
        ccfc_resource_size=ccfc_resource_size,
    )


# ---------------------------------------------------------------------------
# Dynamic cross-validation
# ---------------------------------------------------------------------------

#: Resource sizes for the quick SBR verification grid — small enough to
#: stay fast, two points so size scaling is exercised.
QUICK_SIZES: Tuple[int, ...] = (1 * MB, 2 * MB)


@dataclass(frozen=True)
class VerificationCheck:
    """One simulated attack under a mitigated profile vs its bound."""

    kind: str
    subject: str
    mitigation: str
    resource_size: int
    simulated_factor: float
    residual_bound: float

    @property
    def ok(self) -> bool:
        return self.simulated_factor <= self.residual_bound

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "mitigation": self.mitigation,
            "resource_size": self.resource_size,
            "simulated_factor": round(self.simulated_factor, 3),
            "residual_bound": round(self.residual_bound, 3),
            "ok": self.ok,
        }


def verify_recommendation(
    recommendation: Recommendation,
    sizes: Sequence[int] = QUICK_SIZES,
    obr_resource_size: int = 1024,
) -> List[VerificationCheck]:
    """Simulate the attack under the chosen mitigation and compare the
    measured factor against the residual bound (sim <= bound must hold,
    same contract as the clean bounds; for CCFC the bound is exact, so
    the check is equality up to the <= comparison)."""
    from repro.core.ccfc import CcfcAttack
    from repro.core.obr import ObrAttack
    from repro.core.sbr import SbrAttack

    if recommendation.chosen is None:
        return []
    spec = recommendation.chosen.spec
    checks: List[VerificationCheck] = []
    if recommendation.kind == "sbr":
        vendor = recommendation.subject
        factory = mitigation_profile_factory(vendor, spec.name)
        for size in sizes:
            bound = profile_sbr_bound(vendor, factory, size).factor
            result = SbrAttack(
                vendor, resource_size=size, profile_factory=factory
            ).run()
            checks.append(
                VerificationCheck(
                    kind="sbr",
                    subject=vendor,
                    mitigation=spec.label,
                    resource_size=size,
                    simulated_factor=result.amplification,
                    residual_bound=bound,
                )
            )
        return checks

    if recommendation.kind == "ccfc":
        vendor = recommendation.subject
        factory = mitigation_profile_factory(vendor, spec.name)
        for size in sizes:
            bound = profile_ccfc_bound(vendor, factory, size).factor
            result = CcfcAttack(
                vendor, resource_size=size, profile_factory=factory
            ).run()
            checks.append(
                VerificationCheck(
                    kind="ccfc",
                    subject=vendor,
                    mitigation=spec.label,
                    resource_size=size,
                    simulated_factor=result.amplification,
                    residual_bound=bound,
                )
            )
        return checks

    fcdn, bcdn = recommendation.subject.split(" -> ")
    front, back = _obr_factories(fcdn, bcdn, spec)
    n = static_max_n(
        fcdn,
        bcdn,
        resource_size=obr_resource_size,
        fcdn_profile=front,
        bcdn_profile=back,
    )
    if n < 1:
        # The mitigation blocks the attack outright; nothing to simulate.
        return []
    bound = obr_bound(
        fcdn,
        bcdn,
        resource_size=obr_resource_size,
        overlap_count=n,
        fcdn_profile=front,
        bcdn_profile=back,
    ).factor
    result = ObrAttack(
        fcdn,
        bcdn,
        resource_size=obr_resource_size,
        fcdn_profile_factory=front,
        bcdn_profile_factory=back,
    ).run(overlap_count=n)
    checks.append(
        VerificationCheck(
            kind="obr",
            subject=recommendation.subject,
            mitigation=spec.label,
            resource_size=obr_resource_size,
            simulated_factor=result.amplification,
            residual_bound=bound,
        )
    )
    return checks


def verify_recommendations(
    report: RecommendationReport, sizes: Sequence[int] = QUICK_SIZES
) -> List[VerificationCheck]:
    """Cross-validate every recommendation in ``report`` dynamically."""
    checks: List[VerificationCheck] = []
    for recommendation in report.recommendations:
        checks.extend(
            verify_recommendation(
                recommendation,
                sizes=sizes,
                obr_resource_size=report.obr_resource_size,
            )
        )
    return checks


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_recommendations_table(report: RecommendationReport) -> str:
    """The recommendations as the repo's standard ASCII table."""
    from repro.reporting.render import render_table

    rows = []
    for recommendation in report.recommendations:
        chosen = recommendation.chosen
        rejected = ", ".join(
            f"{option.spec.label} ({option.residual_factor:.1f}x)"
            for option in recommendation.rejected
        )
        rows.append(
            [
                recommendation.finding.severity,
                recommendation.kind,
                recommendation.subject,
                chosen.spec.label if chosen is not None else "NONE",
                chosen.spec.cost_label if chosen is not None else "-",
                f"{chosen.residual_factor:.2f}x" if chosen is not None else "-",
                f"{recommendation.finding.factor_bound:.0f}x",
                rejected or "-",
            ]
        )
    return render_table(
        [
            "Severity",
            "Kind",
            "Subject",
            "Mitigation",
            "Cost",
            "Residual",
            "Clean bound",
            "Rejected (cheaper, insufficient)",
        ],
        rows,
    )


__all__ = [
    "CCFC_MITIGATIONS",
    "DEFAULT_THRESHOLD",
    "COST_CONFIG_ONLY",
    "COST_FETCH_FLOW",
    "COST_HEADER_GUARD",
    "OBR_MITIGATIONS",
    "QUICK_SIZES",
    "SBR_MITIGATIONS",
    "MitigationOption",
    "MitigationSpec",
    "Recommendation",
    "RecommendationReport",
    "VerificationCheck",
    "ccfc_residual_bound",
    "mitigation_profile_factory",
    "obr_residual_bound",
    "recommend",
    "render_recommendations_table",
    "sbr_faulted_residual_bound",
    "sbr_residual_bound",
    "verify_recommendation",
    "verify_recommendations",
]
