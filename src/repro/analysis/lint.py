"""AST linter enforcing the repo's wire-accounting and typing invariants.

Every traffic number this library reports must flow through
:class:`~repro.netsim.tap.TrafficLedger` and the ``wire_size`` methods;
every byte count must stay an ``int``; every policy dispatch must be
exhaustive; every module must opt into postponed annotation evaluation.
These are easy invariants to erode one convenient shortcut at a time, so
``repro lint`` (and the pytest guard over it) checks them structurally:

* ``future-annotations`` — every module starts with
  ``from __future__ import annotations``.
* ``adhoc-wire-arith`` — in ``core``/``cdn``/``netsim``, wire sizes are
  never recomputed as ``len(x.serialize())`` or by mixing ``len(*.body)``
  into header-size arithmetic; that is ``wire_size()``'s job.
* ``untyped-def`` — every function annotates every parameter and its
  return type (the local stand-in for ``mypy --strict``'s
  ``disallow_untyped_defs``).
* ``enum-equality`` — policy/shape/behavior enum members are compared
  with ``is``, never ``==`` (identity is the invariant; ``==`` silently
  returns ``False`` against foreign types).
* ``nonexhaustive-dispatch`` — an ``if``/``elif`` chain testing two or
  more members of one policy enum must either cover every member or end
  in an ``else``.
* ``bare-status-literal`` — HTTP statuses are compared against
  :class:`~repro.http.status.StatusCode` members, not bare integers.
* ``float-byte-arith`` — true division never lands in a ``*_bytes`` /
  ``*_size`` / ``*_traffic`` binding; byte counts stay integral.
* ``broad-except`` — no ``except:`` / ``except Exception`` /
  ``except BaseException`` outside the declared fault boundaries
  (``BROAD_EXCEPT_BOUNDARIES``): the process-pool executor containing
  arbitrary per-cell failures, and the serve layer, which must survive
  arbitrary injected-runner failures (the circuit breaker's input) and
  arbitrary per-connection failures.  Everywhere else handlers name the
  specific errors they can recover from.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cdn.multirange import MultiRangeReplyBehavior
from repro.cdn.policy import ForwardPolicy
from repro.cdn.vendors.base import SpecShape
from repro.http.grammar import RangeFormat

#: Enums whose members must be compared by identity and dispatched
#: exhaustively: name -> member names.
POLICY_ENUMS: Dict[str, Tuple[str, ...]] = {
    "ForwardPolicy": tuple(m.name for m in ForwardPolicy),
    "SpecShape": tuple(m.name for m in SpecShape),
    "MultiRangeReplyBehavior": tuple(m.name for m in MultiRangeReplyBehavior),
    "RangeFormat": tuple(m.name for m in RangeFormat),
}

#: Status codes that must be written as StatusCode members.
STATUS_LITERALS = frozenset(
    {200, 204, 206, 301, 302, 304, 400, 403, 404, 416, 431, 500, 502, 503}
)

#: Packages where ad-hoc wire-byte arithmetic is forbidden (the
#: accounting core; ``repro.http`` itself *defines* wire_size and is
#: exempt).
WIRE_SCOPED_PACKAGES = ("core", "cdn", "netsim")

#: Wire-size accessors whose results must not be hand-mixed with body
#: lengths.
_WIRE_SIZE_CALLS = frozenset(
    {"wire_size", "header_block_size", "request_line_size", "status_line_size"}
)

#: Binding-name suffixes that denote byte counts.
_BYTE_NAME_SUFFIXES = ("_bytes", "_size", "_traffic")

#: The only files allowed to catch ``Exception``: declared fault
#: boundaries that contain arbitrary third-party failures —
#: ``runner/executor.py`` (per-cell failures crossing the process
#: pool), ``serve/app.py`` (the injected exact runner whose failures
#: feed the circuit breaker), ``serve/server.py`` (per-connection
#: isolation: one bad request must never kill the listener).
BROAD_EXCEPT_BOUNDARIES = frozenset(
    {"runner/executor.py", "serve/app.py", "serve/server.py"}
)


@dataclass(frozen=True)
class LintFinding:
    """One invariant violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def _module_rel_path(path: Path, root: Optional[Path]) -> str:
    if root is None:
        return path.name
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.name


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel_path: str) -> None:
        self.rel_path = rel_path
        self.findings: List[LintFinding] = []
        self.in_wire_scope = rel_path.split("/", 1)[0] in WIRE_SCOPED_PACKAGES
        self.check_status = rel_path != "http/status.py"
        self.check_broad_except = rel_path not in BROAD_EXCEPT_BOUNDARIES

    # -- helpers -------------------------------------------------------------

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(
                path=self.rel_path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- untyped-def ---------------------------------------------------------

    def _check_def(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        skip_first = bool(positional) and positional[0].arg in ("self", "cls")
        to_check = positional[1:] if skip_first else positional
        to_check += list(args.kwonlyargs)
        if args.vararg is not None:
            to_check.append(args.vararg)
        if args.kwarg is not None:
            to_check.append(args.kwarg)
        missing = [a.arg for a in to_check if a.annotation is None]
        if missing:
            self._add(
                node,
                "untyped-def",
                f"function {node.name!r} has unannotated parameters: "
                + ", ".join(missing),
            )
        if node.returns is None and node.name != "__init__":
            self._add(
                node,
                "untyped-def",
                f"function {node.name!r} is missing its return annotation",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_def(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_def(node)
        self.generic_visit(node)

    # -- enum-equality / bare-status-literal ----------------------------------

    @staticmethod
    def _enum_member(node: ast.expr) -> Optional[str]:
        """``ForwardPolicy.DELETION`` -> ``"ForwardPolicy"``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in POLICY_ENUMS
            and node.attr in POLICY_ENUMS[node.value.id]
        ):
            return node.value.id
        return None

    def visit_Compare(self, node: ast.Compare) -> None:
        comparators = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, comparators, comparators[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for side in (left, right):
                    enum_name = self._enum_member(side)
                    if enum_name is not None:
                        self._add(
                            node,
                            "enum-equality",
                            f"compare {enum_name} members with 'is', not "
                            f"'{'==' if isinstance(op, ast.Eq) else '!='}'",
                        )
                        break
                else:
                    if self.check_status:
                        for side in (left, right):
                            if (
                                isinstance(side, ast.Constant)
                                and type(side.value) is int
                                and side.value in STATUS_LITERALS
                            ):
                                self._add(
                                    node,
                                    "bare-status-literal",
                                    f"compare against StatusCode, not the bare "
                                    f"literal {side.value}",
                                )
                                break
        self.generic_visit(node)

    # -- nonexhaustive-dispatch ----------------------------------------------

    @staticmethod
    def _is_test(test: ast.expr) -> Optional[Tuple[str, str, str]]:
        """``subject is Enum.MEMBER`` -> (subject dump, enum, member)."""
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Attribute)
            and isinstance(test.comparators[0].value, ast.Name)
        ):
            attr = test.comparators[0]
            assert isinstance(attr.value, ast.Name)
            if attr.value.id in POLICY_ENUMS and attr.attr in POLICY_ENUMS[attr.value.id]:
                return ast.dump(test.left), attr.value.id, attr.attr
        return None

    def visit_If(self, node: ast.If) -> None:
        # Only inspect chain heads: an If that is itself an elif branch is
        # covered by its head's walk.
        if not getattr(node, "_is_elif", False):
            self._check_chain(node)
        self.generic_visit(node)

    def _check_chain(self, head: ast.If) -> None:
        tests: List[Tuple[str, str, str]] = []
        current: ast.If = head
        has_else = False
        while True:
            parsed = self._is_test(current.test)
            if parsed is None:
                return  # not a pure enum-identity chain; out of scope
            tests.append(parsed)
            orelse = current.orelse
            if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                orelse[0]._is_elif = True  # type: ignore[attr-defined]
                current = orelse[0]
                continue
            has_else = bool(orelse)
            break
        if len(tests) < 2 or has_else:
            return
        subjects = {t[0] for t in tests}
        enums = {t[1] for t in tests}
        if len(subjects) != 1 or len(enums) != 1:
            return
        enum_name = next(iter(enums))
        covered = {t[2] for t in tests}
        missing = [m for m in POLICY_ENUMS[enum_name] if m not in covered]
        if missing:
            self._add(
                head,
                "nonexhaustive-dispatch",
                f"{enum_name} dispatch has no 'else' and misses: "
                + ", ".join(missing),
            )

    # -- adhoc-wire-arith ------------------------------------------------------

    @staticmethod
    def _is_len_of(node: ast.expr, attr: str) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Attribute)
            and node.args[0].attr == attr
        )

    @staticmethod
    def _is_wire_size_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _WIRE_SIZE_CALLS
        )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.in_wire_scope
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Attribute)
            and node.args[0].func.attr == "serialize"
        ):
            self._add(
                node,
                "adhoc-wire-arith",
                "wire size computed as len(x.serialize()); use x.wire_size()",
            )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.in_wire_scope and isinstance(node.op, (ast.Add, ast.Sub)):
            sides = (node.left, node.right)
            if any(self._is_len_of(s, "body") for s in sides) and any(
                self._is_wire_size_call(s) for s in sides
            ):
                self._add(
                    node,
                    "adhoc-wire-arith",
                    "len(*.body) mixed into header-size arithmetic; "
                    "use wire_size()",
                )
        self.generic_visit(node)

    # -- broad-except ----------------------------------------------------------

    @staticmethod
    def _broad_name(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id in ("Exception", "BaseException"):
            return node.id
        return None

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.check_broad_except:
            if node.type is None:
                self._add(
                    node,
                    "broad-except",
                    "bare 'except:' swallows everything; name the errors "
                    "this handler can actually recover from",
                )
            else:
                types = (
                    list(node.type.elts)
                    if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
                for entry in types:
                    broad = self._broad_name(entry)
                    if broad is not None:
                        self._add(
                            node,
                            "broad-except",
                            f"'except {broad}' outside a declared fault "
                            "boundary; "
                            "name the errors this handler can actually "
                            "recover from",
                        )
                        break
        self.generic_visit(node)

    # -- float-byte-arith ------------------------------------------------------

    @staticmethod
    def _byte_named(target: ast.expr) -> Optional[str]:
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is not None and name.endswith(_BYTE_NAME_SUFFIXES):
            return name
        return None

    @staticmethod
    def _contains_true_div(node: ast.expr) -> bool:
        return any(
            isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)
            for sub in ast.walk(node)
        )

    def _check_byte_assign(self, targets: Iterable[ast.expr], value: Optional[ast.expr], node: ast.AST) -> None:
        if value is None or not self._contains_true_div(value):
            return
        for target in targets:
            name = self._byte_named(target)
            if name is not None:
                self._add(
                    node,
                    "float-byte-arith",
                    f"true division assigned to byte count {name!r}; "
                    "byte counts stay integral (use //)",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_byte_assign(node.targets, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_byte_assign([node.target], node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Div):
            name = self._byte_named(node.target)
            if name is not None:
                self._add(
                    node,
                    "float-byte-arith",
                    f"true division assigned to byte count {name!r}; "
                    "byte counts stay integral (use //)",
                )
        else:
            self._check_byte_assign([node.target], node.value, node)
        self.generic_visit(node)


def lint_source(
    source: str, rel_path: str = "<string>"
) -> List[LintFinding]:
    """Lint one module's source text (``rel_path`` is repo-relative,
    used for scoping and reporting)."""
    tree = ast.parse(source, filename=rel_path)
    findings: List[LintFinding] = []

    has_future = any(
        isinstance(stmt, ast.ImportFrom)
        and stmt.module == "__future__"
        and any(alias.name == "annotations" for alias in stmt.names)
        for stmt in tree.body
    )
    if not has_future:
        findings.append(
            LintFinding(
                path=rel_path,
                line=1,
                col=0,
                rule="future-annotations",
                message="module is missing 'from __future__ import annotations'",
            )
        )

    visitor = _Visitor(rel_path)
    visitor.visit(tree)
    findings.extend(visitor.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Union[str, Path], root: Optional[Union[str, Path]] = None) -> List[LintFinding]:
    """Lint one file; ``root`` anchors package-scoped rules."""
    file_path = Path(path)
    rel = _module_rel_path(file_path, Path(root) if root is not None else None)
    return lint_source(file_path.read_text(encoding="utf-8"), rel)


def default_root() -> Path:
    """The ``src/repro`` package directory this module ships in."""
    return Path(__file__).resolve().parent.parent


def lint_paths(
    paths: Sequence[Union[str, Path]],
    root: Optional[Union[str, Path]] = None,
) -> List[LintFinding]:
    """Lint files and/or directories (recursing into ``*.py``)."""
    anchor = Path(root) if root is not None else default_root()
    findings: List[LintFinding] = []
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            for file_path in sorted(entry_path.rglob("*.py")):
                findings.extend(lint_file(file_path, root=anchor))
        else:
            findings.extend(lint_file(entry_path, root=anchor))
    return findings


def lint_repo(root: Optional[Union[str, Path]] = None) -> List[LintFinding]:
    """Lint the whole ``repro`` package (the pytest guard's entry)."""
    anchor = Path(root) if root is not None else default_root()
    return lint_paths([anchor], root=anchor)
