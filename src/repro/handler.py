"""The request-handler protocol shared by every hop of the pipeline.

Origin servers, CDN nodes, and test doubles all expose the same
synchronous surface: ``handle(request) -> response``.  Chaining handlers
is how deployments are wired (client → CDN → ... → origin).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.http.message import HttpRequest, HttpResponse


@runtime_checkable
class HttpHandler(Protocol):
    """Anything that can answer an HTTP request."""

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Answer ``request``; must not mutate it."""
        ...
