"""Declarative experiment scenarios.

A scenario is a JSON document describing a batch of experiments to run —
the shape a downstream user wants for CI jobs or repeated evaluations::

    {
      "name": "nightly",
      "experiments": [
        {"type": "sbr", "vendor": "akamai", "size_mb": 25},
        {"type": "obr", "fcdn": "cloudflare", "bcdn": "akamai"},
        {"type": "flood", "m": 12},
        {"type": "survey"}
      ]
    }

:func:`run_scenario` executes the batch and returns structured results;
``python -m repro scenario file.json`` prints them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.cdn.vendors import all_vendor_names
from repro.core.feasibility import survey
from repro.core.obr import ObrAttack
from repro.core.practical import BandwidthAttackSimulation
from repro.core.sbr import SbrAttack
from repro.errors import ConfigurationError

MB = 1 << 20

VALID_TYPES = ("sbr", "obr", "flood", "survey")


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's structured result."""

    type: str
    parameters: Dict[str, Any]
    metrics: Dict[str, Any]


@dataclass
class ScenarioOutcome:
    """A completed scenario run."""

    name: str
    outcomes: List[ExperimentOutcome] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "experiments": [
                {"type": o.type, "parameters": o.parameters, "metrics": o.metrics}
                for o in self.outcomes
            ],
        }


def load_scenario(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and structurally validate a scenario file."""
    try:
        spec = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot load scenario {path}: {exc}") from exc
    validate_scenario(spec)
    return spec


def validate_scenario(spec: Dict[str, Any]) -> None:
    """Raise :class:`ConfigurationError` for structural problems."""
    if not isinstance(spec, dict):
        raise ConfigurationError("scenario must be a JSON object")
    if not isinstance(spec.get("name"), str) or not spec["name"]:
        raise ConfigurationError("scenario needs a non-empty 'name'")
    experiments = spec.get("experiments")
    if not isinstance(experiments, list) or not experiments:
        raise ConfigurationError("scenario needs a non-empty 'experiments' list")
    for index, experiment in enumerate(experiments):
        if not isinstance(experiment, dict):
            raise ConfigurationError(f"experiment #{index} must be an object")
        kind = experiment.get("type")
        if kind not in VALID_TYPES:
            raise ConfigurationError(
                f"experiment #{index}: unknown type {kind!r} "
                f"(expected one of {VALID_TYPES})"
            )
        if kind == "sbr":
            vendor = experiment.get("vendor")
            if vendor not in all_vendor_names():
                raise ConfigurationError(
                    f"experiment #{index}: unknown vendor {vendor!r}"
                )
        if kind == "obr":
            for role in ("fcdn", "bcdn"):
                vendor = experiment.get(role)
                if vendor not in all_vendor_names():
                    raise ConfigurationError(
                        f"experiment #{index}: unknown {role} {vendor!r}"
                    )


def run_scenario(spec: Dict[str, Any]) -> ScenarioOutcome:
    """Execute a validated scenario."""
    validate_scenario(spec)
    outcome = ScenarioOutcome(name=spec["name"])
    for experiment in spec["experiments"]:
        outcome.outcomes.append(_run_experiment(experiment))
    return outcome


def _run_experiment(experiment: Dict[str, Any]) -> ExperimentOutcome:
    kind = experiment["type"]
    if kind == "sbr":
        return _run_sbr(experiment)
    if kind == "obr":
        return _run_obr(experiment)
    if kind == "flood":
        return _run_flood(experiment)
    return _run_survey(experiment)


def _run_sbr(experiment: Dict[str, Any]) -> ExperimentOutcome:
    vendor = experiment["vendor"]
    size_mb = int(experiment.get("size_mb", 10))
    rounds = int(experiment.get("rounds", 1))
    result = SbrAttack(vendor, resource_size=size_mb * MB).run(rounds=rounds)
    return ExperimentOutcome(
        type="sbr",
        parameters={"vendor": vendor, "size_mb": size_mb, "rounds": rounds},
        metrics={
            "amplification": round(result.amplification, 2),
            "origin_traffic": result.origin_traffic,
            "client_traffic": result.client_traffic,
        },
    )


def _run_obr(experiment: Dict[str, Any]) -> ExperimentOutcome:
    fcdn, bcdn = experiment["fcdn"], experiment["bcdn"]
    overlaps = experiment.get("overlaps")
    attack = ObrAttack(fcdn, bcdn)
    result = attack.run(overlap_count=int(overlaps) if overlaps else None)
    return ExperimentOutcome(
        type="obr",
        parameters={"fcdn": fcdn, "bcdn": bcdn, "overlaps": result.overlap_count},
        metrics={
            "amplification": round(result.amplification, 2),
            "fcdn_bcdn_traffic": result.fcdn_bcdn_traffic,
            "bcdn_origin_traffic": result.bcdn_origin_traffic,
        },
    )


def _run_flood(experiment: Dict[str, Any]) -> ExperimentOutcome:
    m = int(experiment.get("m", 12))
    vendor = experiment.get("vendor", "cloudflare")
    uplink = float(experiment.get("uplink_mbps", 1000.0))
    simulation = BandwidthAttackSimulation(vendor=vendor, origin_uplink_mbps=uplink)
    result = simulation.run(m)
    return ExperimentOutcome(
        type="flood",
        parameters={"vendor": vendor, "m": m, "uplink_mbps": uplink},
        metrics={
            "steady_origin_mbps": round(result.steady_origin_mbps, 1),
            "peak_client_kbps": round(result.peak_client_kbps, 1),
            "saturated": result.saturated,
        },
    )


def _run_survey(experiment: Dict[str, Any]) -> ExperimentOutcome:
    file_size = int(experiment.get("file_size", 16 * 1024))
    results = survey(file_size=file_size)
    return ExperimentOutcome(
        type="survey",
        parameters={"file_size": file_size},
        metrics={
            "sbr_vulnerable": sorted(
                v for v, r in results.items() if r.sbr_vulnerable
            ),
            "obr_frontends": sorted(
                v for v, r in results.items() if r.obr_fcdn_vulnerable
            ),
            "obr_backends": sorted(
                v for v, r in results.items() if r.obr_bcdn_vulnerable
            ),
        },
    )
