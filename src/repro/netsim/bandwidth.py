"""Fluid-flow bandwidth simulation for the practicability experiment.

The paper's fourth experiment sends ``m`` SBR requests per second for 30
seconds and watches the origin's 1000 Mbps uplink saturate (Fig 7).  We
reproduce it with a classic fluid-flow model: transfers are continuous
flows over capacity-limited links, progressing each tick at their
max-min fair share, with excess demand naturally queueing as unfinished
transfers that spill into later ticks.

The model is deliberately simple — no packets, no TCP dynamics — because
the figure's shape (linear growth in ``m`` until the uplink pins at its
capacity) is a pure capacity/queueing phenomenon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError


@dataclass
class Link:
    """A unidirectional link with a fixed capacity in bits per second."""

    name: str
    capacity_bps: float

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise SimulationError(
                f"link {self.name!r} capacity must be positive, got {self.capacity_bps}"
            )

    @property
    def capacity_bytes_per_sec(self) -> float:
        return self.capacity_bps / 8.0


@dataclass
class Transfer:
    """A flow of ``size_bytes`` across an ordered set of links."""

    size_bytes: float
    links: Sequence[str]
    start_time: float = 0.0
    label: str = ""
    remaining: float = field(init=False)
    finish_time: Optional[float] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise SimulationError(f"transfer size must be >= 0, got {self.size_bytes}")
        if not self.links:
            raise SimulationError("a transfer must traverse at least one link")
        self.remaining = float(self.size_bytes)

    @property
    def done(self) -> bool:
        return self.remaining <= 0

    def active_at(self, now: float) -> bool:
        return self.start_time <= now and not self.done


@dataclass(frozen=True)
class LinkSample:
    """Throughput observed on one link during one tick."""

    time: float
    link: str
    throughput_bps: float
    active_transfers: int


class FluidSimulator:
    """Tick-based max-min fair-share fluid simulator.

    Each tick of length ``dt``:

    1. collect transfers that have started and are unfinished;
    2. compute each transfer's rate as the max-min fair allocation over
       its links (progressive filling);
    3. advance every transfer by ``rate * dt`` and sample per-link
       throughput.
    """

    def __init__(self, links: Sequence[Link], dt: float = 0.1) -> None:
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt}")
        self.dt = dt
        self._links: Dict[str, Link] = {}
        for link in links:
            if link.name in self._links:
                raise SimulationError(f"duplicate link name {link.name!r}")
            self._links[link.name] = link
        self._transfers: List[Transfer] = []
        self._samples: List[LinkSample] = []
        self._now = 0.0

    # -- setup ----------------------------------------------------------------

    def add_transfer(
        self,
        size_bytes: float,
        links: Sequence[str],
        start_time: float = 0.0,
        label: str = "",
    ) -> Transfer:
        """Schedule a transfer; unknown link names raise immediately."""
        for name in links:
            if name not in self._links:
                raise SimulationError(f"unknown link {name!r}")
        transfer = Transfer(
            size_bytes=size_bytes, links=tuple(links), start_time=start_time, label=label
        )
        self._transfers.append(transfer)
        return transfer

    @property
    def transfers(self) -> List[Transfer]:
        return list(self._transfers)

    # -- execution --------------------------------------------------------------

    def run(self, until: float) -> List[LinkSample]:
        """Advance the simulation to time ``until``; returns all samples."""
        if until < self._now:
            raise SimulationError(f"cannot run backwards from {self._now} to {until}")
        while self._now + self.dt <= until + 1e-9:
            self._tick()
        return list(self._samples)

    def _tick(self) -> None:
        active = [t for t in self._transfers if t.active_at(self._now)]
        rates = self._max_min_rates(active)
        moved_per_link: Dict[str, float] = {name: 0.0 for name in self._links}
        counts_per_link: Dict[str, int] = {name: 0 for name in self._links}
        for index, transfer in enumerate(active):
            rate = rates[index]
            moved = min(transfer.remaining, rate * self.dt)
            transfer.remaining -= moved
            if transfer.done and transfer.finish_time is None:
                transfer.finish_time = self._now + self.dt
            for name in transfer.links:
                moved_per_link[name] += moved
                counts_per_link[name] += 1
        for name in self._links:
            self._samples.append(
                LinkSample(
                    time=self._now,
                    link=name,
                    throughput_bps=moved_per_link[name] * 8.0 / self.dt,
                    active_transfers=counts_per_link[name],
                )
            )
        self._now += self.dt

    def _max_min_rates(self, active: Sequence[Transfer]) -> Dict[int, float]:
        """Progressive-filling max-min fair allocation (bytes/sec).

        Keyed by position in ``active`` — not ``id()`` — so the rate map
        is a pure function of the transfer list and two identical runs
        allocate identically.
        """
        rates: Dict[int, float] = {index: 0.0 for index in range(len(active))}
        unfrozen: Dict[int, Transfer] = dict(enumerate(active))
        remaining_capacity = {
            name: link.capacity_bytes_per_sec for name, link in self._links.items()
        }
        while unfrozen:
            # Most constrained link determines the next rate increment.
            increments = []
            for name, capacity in remaining_capacity.items():
                users = [t for t in unfrozen.values() if name in t.links]
                if users:
                    increments.append((capacity / len(users), name))
            if not increments:
                break
            increment, bottleneck = min(increments)
            for index, transfer in unfrozen.items():
                rates[index] += increment
                for name in transfer.links:
                    remaining_capacity[name] -= increment
            # Freeze every transfer crossing the saturated bottleneck.
            for key, transfer in list(unfrozen.items()):
                if bottleneck in transfer.links:
                    del unfrozen[key]
            remaining_capacity = {
                name: max(0.0, cap) for name, cap in remaining_capacity.items()
            }
        return rates

    # -- inspection ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def samples_for(self, link: str) -> List[LinkSample]:
        return [s for s in self._samples if s.link == link]

    def throughput_series(self, link: str) -> List[float]:
        """Per-tick throughput (bps) for ``link``, in time order."""
        return [s.throughput_bps for s in self.samples_for(link)]

    def mean_throughput_bps(self, link: str, start: float = 0.0, end: float = float("inf")) -> float:
        """Average throughput on ``link`` over the window ``[start, end)``."""
        window = [s for s in self.samples_for(link) if start <= s.time < end]
        if not window:
            return 0.0
        return sum(s.throughput_bps for s in window) / len(window)
