"""Per-connection traffic accounting.

A :class:`Connection` is the observation point for one hop of the
client → CDN → origin path.  Every request/response exchange that crosses
it is recorded as an :class:`ExchangeRecord` with exact wire sizes, which
the amplification reports later aggregate per segment.

Two non-ideal behaviors the paper relies on are modeled here:

* **response truncation** — Azure cuts its first back-to-origin
  connection once ~8 MB of payload has arrived; the origin *sent* the
  whole resource but only part of it crossed the wire.  Callers pass
  ``deliver_cap`` to :meth:`Connection.exchange` to model this; the
  record keeps both the sent and the delivered size.
* **client abort / tiny receive window** — an OBR attacker aborts the
  client connection (or shrinks its TCP window) so it receives almost
  nothing while upstream connections keep streaming.  The same
  ``deliver_cap`` mechanism covers it from the attacker side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.faults.plan import FaultKind, FaultRule, current_faults
from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.overhead import NullOverheadModel, OverheadModel
from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer


def _fault_cap(rule: FaultRule, sent: int, header_wire: int) -> int:
    """Delivered-byte cap a delivery fault imposes on one exchange."""
    if rule.kind is FaultKind.RESET:
        return 0
    if rule.kind is FaultKind.STALL:
        # The receiver saw headers, then the window never reopened.
        return min(sent, header_wire)
    if rule.kind is FaultKind.TRUNCATE:
        return int(sent * rule.truncate_fraction)
    raise AssertionError(f"not a delivery fault: {rule.kind!r}")


@dataclass(frozen=True)
class ExchangeRecord:
    """One request/response exchange as seen on a connection."""

    request_bytes: int
    response_bytes_sent: int
    response_bytes_delivered: int
    status: int
    note: str = ""
    #: Ids of the span this exchange happened under, when a tracer was
    #: active.  Observability only: excluded from equality and repr so
    #: traced and untraced runs produce comparable records.
    trace_id: Optional[str] = field(default=None, compare=False, repr=False)
    span_id: Optional[str] = field(default=None, compare=False, repr=False)

    @property
    def truncated(self) -> bool:
        return self.response_bytes_delivered < self.response_bytes_sent


@dataclass
class Connection:
    """A single logical TCP connection between two named endpoints."""

    segment: str
    client_label: str = "client"
    server_label: str = "server"
    overhead: OverheadModel = field(default_factory=NullOverheadModel)
    records: List[ExchangeRecord] = field(default_factory=list)
    _setup_counted: bool = field(default=False, repr=False)

    def exchange(
        self,
        request: HttpRequest,
        response: HttpResponse,
        deliver_cap: Optional[int] = None,
        note: str = "",
    ) -> ExchangeRecord:
        """Record a request/response exchange.

        ``deliver_cap`` bounds how many response wire bytes actually cross
        the connection (connection cut or receiver-window stall); ``None``
        delivers everything.
        """
        request_bytes = self.overhead.framed_size(request.wire_size())
        sent = self.overhead.framed_size(response.wire_size())
        if not self._setup_counted:
            # Attribute handshake cost to the first response direction;
            # a single per-connection constant either way.
            sent += self.overhead.connection_setup_bytes()
            self._setup_counted = True
        injector = current_faults()
        if injector is not None:
            rule = injector.delivery_fault(self.segment)
            if rule is not None:
                cap = _fault_cap(
                    rule, sent, self.overhead.framed_size(response.header_block_size())
                )
                deliver_cap = cap if deliver_cap is None else min(deliver_cap, cap)
                fault_tag = f"fault:{rule.kind.value}"
                note = f"{note}+{fault_tag}" if note else fault_tag
        delivered = sent if deliver_cap is None else min(sent, max(0, deliver_cap))
        # Each exchange gets its own leaf span (a hop span can cover
        # several exchanges — e.g. Azure's dual back-to-origin fetches —
        # so per-exchange byte attributes must not collide on one span).
        with current_tracer().span("net.exchange") as span:
            record = ExchangeRecord(
                request_bytes=request_bytes,
                response_bytes_sent=sent,
                response_bytes_delivered=delivered,
                status=response.status,
                note=note,
                trace_id=span.trace_id,
                span_id=span.span_id,
            )
            if span.recording:
                span.set(
                    segment=self.segment,
                    client=self.client_label,
                    server=self.server_label,
                    status=record.status,
                    request_bytes=record.request_bytes,
                    response_bytes_sent=record.response_bytes_sent,
                    response_bytes_delivered=record.response_bytes_delivered,
                )
                if note:
                    span.set(note=note)
        self.records.append(record)
        registry = current_metrics()
        if registry is not None:
            registry.record_exchange(self.segment, record)
        return record

    # -- aggregates -----------------------------------------------------------

    @property
    def request_bytes(self) -> int:
        """Total request-direction wire bytes."""
        return sum(r.request_bytes for r in self.records)

    @property
    def response_bytes_sent(self) -> int:
        """Total response bytes the server side pushed into the connection."""
        return sum(r.response_bytes_sent for r in self.records)

    @property
    def response_bytes_delivered(self) -> int:
        """Total response bytes that actually reached the client side."""
        return sum(r.response_bytes_delivered for r in self.records)

    @property
    def exchange_count(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"Connection({self.segment}: {self.client_label}->{self.server_label}, "
            f"{self.exchange_count} exchanges, "
            f"req={self.request_bytes}B resp={self.response_bytes_sent}B)"
        )
