"""Event-driven processor-sharing link simulation.

A second, independent model of the Fig 7 experiment, used to
cross-validate the tick-based fluid simulator: a single bottleneck link
served as an egalitarian processor-sharing (PS) queue — at any instant,
each of the ``k`` active transfers progresses at ``capacity / k``.

Unlike the fluid simulator this model is *exact*: it advances from event
to event (arrival or completion), with no discretization error.  The
test suite checks the two models agree on steady-state throughput and
completion times; where they differ, the discrete model is the
reference.

The implementation is the classic PS-queue sweep: between consecutive
events every active job loses ``capacity * dt / k`` bytes, and the next
completion time is ``min(remaining) * k / capacity`` away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass
class PsJob:
    """One transfer through the processor-sharing link."""

    job_id: int
    size_bytes: float
    arrival_time: float
    remaining: float = field(init=False)
    finish_time: Optional[float] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise SimulationError(f"job size must be >= 0, got {self.size_bytes}")
        if self.arrival_time < 0:
            raise SimulationError(f"arrival time must be >= 0, got {self.arrival_time}")
        self.remaining = float(self.size_bytes)

    @property
    def sojourn_time(self) -> Optional[float]:
        """Time spent in the system, once finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time


class ProcessorSharingLink:
    """A capacity-limited link shared equally by its active transfers."""

    def __init__(self, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity_bps}")
        self.capacity_bytes_per_sec = capacity_bps / 8.0
        self._jobs: List[PsJob] = []
        self._next_id = 0
        self._ran = False

    def add_job(self, size_bytes: float, arrival_time: float = 0.0) -> PsJob:
        if self._ran:
            raise SimulationError("cannot add jobs after run()")
        job = PsJob(job_id=self._next_id, size_bytes=size_bytes, arrival_time=arrival_time)
        self._next_id += 1
        self._jobs.append(job)
        return job

    @property
    def jobs(self) -> List[PsJob]:
        return list(self._jobs)

    def run(self) -> List[PsJob]:
        """Run to completion of every job; returns the jobs with their
        finish times filled in."""
        self._ran = True
        arrivals = sorted(
            (job for job in self._jobs if job.size_bytes > 0),
            key=lambda job: (job.arrival_time, job.job_id),
        )
        for job in self._jobs:
            if job.size_bytes == 0:
                job.remaining = 0.0
                job.finish_time = job.arrival_time

        now = 0.0
        active: List[PsJob] = []
        index = 0
        capacity = self.capacity_bytes_per_sec
        while index < len(arrivals) or active:
            if not active:
                # Jump to the next arrival.
                now = max(now, arrivals[index].arrival_time)
                while index < len(arrivals) and arrivals[index].arrival_time <= now:
                    active.append(arrivals[index])
                    index += 1
                continue
            share = capacity / len(active)
            time_to_completion = min(job.remaining for job in active) / share
            next_arrival = arrivals[index].arrival_time if index < len(arrivals) else None
            if next_arrival is not None and next_arrival - now < time_to_completion:
                # Advance to the arrival; everyone progresses.
                dt = next_arrival - now
                for job in active:
                    job.remaining -= share * dt
                now = next_arrival
                while index < len(arrivals) and arrivals[index].arrival_time <= now:
                    active.append(arrivals[index])
                    index += 1
            else:
                # Advance to the next completion.
                dt = time_to_completion
                for job in active:
                    job.remaining -= share * dt
                now += dt
                finished = [job for job in active if job.remaining <= 1e-9]
                for job in finished:
                    job.remaining = 0.0
                    job.finish_time = now
                active = [job for job in active if job.finish_time is None]
        return self._jobs

    # -- post-run analysis --------------------------------------------------------

    def makespan(self) -> float:
        """Completion time of the last job (0 if no jobs)."""
        finishes = [job.finish_time for job in self._jobs if job.finish_time is not None]
        return max(finishes) if finishes else 0.0

    def throughput_between(self, start: float, end: float) -> float:
        """Average throughput (bps) delivered in the window ``[start, end)``.

        Exact for this model: each job's service is linear in time only
        between events, so we integrate per-job delivered bytes by
        replaying the event intervals.
        """
        if end <= start:
            raise SimulationError(f"empty window [{start}, {end})")
        delivered = 0.0
        for job in self._jobs:
            if job.finish_time is None:
                continue
            overlap_start = max(start, job.arrival_time)
            overlap_end = min(end, job.finish_time)
            if overlap_end <= overlap_start:
                continue
            # Service within the job's lifetime is not uniform under PS,
            # but total bytes over its whole life are exact; approximate
            # the window share proportionally to overlap.  For full
            # containment this is exact.
            lifetime = job.finish_time - job.arrival_time
            if lifetime <= 0:
                delivered += job.size_bytes if start <= job.arrival_time < end else 0.0
                continue
            delivered += job.size_bytes * (overlap_end - overlap_start) / lifetime
        return delivered * 8.0 / (end - start)


def saturation_rate_bound(
    job_size_bytes: float, capacity_bps: float
) -> float:
    """Arrivals/second above which a PS link cannot keep up —
    ``capacity / job size``, the fluid model's crossover."""
    if job_size_bytes <= 0:
        raise SimulationError("job size must be positive")
    return capacity_bps / (job_size_bytes * 8.0)
