"""Segment-level traffic aggregation.

The paper names its observation points after the endpoints they join:
``client-cdn``, ``cdn-origin``, ``fcdn-bcdn``, ``bcdn-origin``.  A
:class:`TrafficLedger` owns every :class:`~repro.netsim.connection.Connection`
opened during an attack run and rolls them up into per-segment
:class:`SegmentStats` keyed by those names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netsim.connection import Connection
from repro.netsim.overhead import NullOverheadModel, OverheadModel

#: Canonical segment names used throughout the experiments.
CLIENT_CDN = "client-cdn"
CDN_ORIGIN = "cdn-origin"
FCDN_BCDN = "fcdn-bcdn"
BCDN_ORIGIN = "bcdn-origin"


@dataclass(frozen=True)
class SegmentStats:
    """Aggregated traffic for one named segment."""

    segment: str
    connection_count: int
    exchange_count: int
    request_bytes: int
    response_bytes_sent: int
    response_bytes_delivered: int

    @property
    def total_bytes(self) -> int:
        """All wire bytes on this segment (both directions, as sent)."""
        return self.request_bytes + self.response_bytes_sent


class TrafficLedger:
    """Creates, owns, and aggregates connections by segment name."""

    def __init__(self, overhead: Optional[OverheadModel] = None) -> None:
        self._overhead = overhead if overhead is not None else NullOverheadModel()
        self._connections: List[Connection] = []

    def open_connection(
        self,
        segment: str,
        client_label: str = "client",
        server_label: str = "server",
    ) -> Connection:
        """Open (and track) a new connection on ``segment``."""
        connection = Connection(
            segment=segment,
            client_label=client_label,
            server_label=server_label,
            overhead=self._overhead,
        )
        self._connections.append(connection)
        return connection

    @property
    def overhead(self) -> OverheadModel:
        """The framing model every connection on this ledger uses (read
        by the static analyzer to bound traffic the same way)."""
        return self._overhead

    @property
    def connections(self) -> List[Connection]:
        return list(self._connections)

    def connections_on(self, segment: str) -> List[Connection]:
        return [c for c in self._connections if c.segment == segment]

    def segment_names(self) -> List[str]:
        """Segment names in first-seen order."""
        seen: Dict[str, None] = {}
        for connection in self._connections:
            seen.setdefault(connection.segment, None)
        return list(seen)

    def segment_stats(self, segment: str) -> SegmentStats:
        """Aggregate every connection on ``segment``."""
        connections = self.connections_on(segment)
        return SegmentStats(
            segment=segment,
            connection_count=len(connections),
            exchange_count=sum(c.exchange_count for c in connections),
            request_bytes=sum(c.request_bytes for c in connections),
            response_bytes_sent=sum(c.response_bytes_sent for c in connections),
            response_bytes_delivered=sum(c.response_bytes_delivered for c in connections),
        )

    def all_stats(self) -> Dict[str, SegmentStats]:
        return {name: self.segment_stats(name) for name in self.segment_names()}

    def response_bytes(self, segment: str, delivered: bool = False) -> int:
        """Shorthand for the response-direction byte count of a segment."""
        stats = self.segment_stats(segment)
        return stats.response_bytes_delivered if delivered else stats.response_bytes_sent

    def __repr__(self) -> str:
        summary = ", ".join(
            f"{name}={self.segment_stats(name).response_bytes_sent}B"
            for name in self.segment_names()
        )
        return f"TrafficLedger({summary})"
