"""Optional analytic TCP/IP framing overhead.

The paper's traffic numbers come from packet captures, so they include
TCP/IP headers, handshakes, and ACK traffic on top of the HTTP payload.
This library reports pure HTTP payload bytes by default (the
amplification *ratios* are nearly identical either way, because both the
numerator and the denominator gain framing overhead).  For experiments
that want capture-like absolute numbers, :class:`TcpOverheadModel` adds a
standard analytic estimate.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class OverheadModel(ABC):
    """Maps an HTTP payload size to the on-the-wire byte count."""

    @abstractmethod
    def framed_size(self, payload_bytes: int) -> int:
        """Wire bytes needed to carry ``payload_bytes`` of HTTP payload."""

    @abstractmethod
    def connection_setup_bytes(self) -> int:
        """One-time per-connection cost (handshake/teardown), in bytes."""


class NullOverheadModel(OverheadModel):
    """No framing: wire bytes equal HTTP payload bytes (the default)."""

    def framed_size(self, payload_bytes: int) -> int:
        return payload_bytes

    def connection_setup_bytes(self) -> int:
        return 0


class Http2FramingModel(OverheadModel):
    """HTTP/2 DATA-frame framing (RFC 7540 §4.1).

    The paper notes (§VI-B) that "the RangeAmp threats in HTTP/1.1 are
    also applicable to HTTP/2" — ranges in HTTP/2 are defined by
    reference to RFC 7233, and the framing layer changes the byte counts
    only marginally.  This model quantifies that: each frame of up to
    ``max_frame_size`` payload bytes pays a 9-byte frame header, and the
    connection pays a one-time preface.  HPACK header compression is not
    modeled (it would *shrink* the attacker-side denominators slightly,
    i.e. make amplification marginally worse), so the model is
    conservative.
    """

    FRAME_HEADER_BYTES = 9
    #: "PRI * HTTP/2.0..." preface plus initial SETTINGS exchange.
    CONNECTION_PREFACE_BYTES = 24 + 2 * (9 + 18)

    def __init__(self, max_frame_size: int = 16384) -> None:
        if max_frame_size < 1:
            raise ValueError(f"max_frame_size must be positive, got {max_frame_size}")
        self.max_frame_size = max_frame_size

    def framed_size(self, payload_bytes: int) -> int:
        if payload_bytes <= 0:
            return 0
        frames = math.ceil(payload_bytes / self.max_frame_size)
        return payload_bytes + frames * self.FRAME_HEADER_BYTES

    def connection_setup_bytes(self) -> int:
        return self.CONNECTION_PREFACE_BYTES


class TcpOverheadModel(OverheadModel):
    """Per-segment TCP/IPv4 header overhead plus handshake cost.

    Each MSS-sized segment pays ``header_bytes`` (20 B IPv4 + 20 B TCP by
    default; raise it to model timestamps or IPv6).  The handshake is
    modeled as three bare segments and the teardown as two.
    """

    def __init__(self, mss: int = 1460, header_bytes: int = 40) -> None:
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        if header_bytes < 0:
            raise ValueError(f"header_bytes must be >= 0, got {header_bytes}")
        self.mss = mss
        self.header_bytes = header_bytes

    def framed_size(self, payload_bytes: int) -> int:
        if payload_bytes <= 0:
            return 0
        segments = math.ceil(payload_bytes / self.mss)
        return payload_bytes + segments * self.header_bytes

    def connection_setup_bytes(self) -> int:
        return 5 * self.header_bytes
