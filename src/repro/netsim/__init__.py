"""Simulated network substrate.

The paper measures attack traffic with packet captures on four network
segments (client–cdn, cdn–origin, fcdn–bcdn, bcdn–origin).  This package
provides the equivalent observation points for the simulator:

* :mod:`repro.netsim.clock` — a deterministic simulation clock.
* :mod:`repro.netsim.connection` — per-connection byte accounting, with
  response truncation (for Azure's 8 MB connection cut) and abort
  semantics (for the OBR attacker's early client-side abort).
* :mod:`repro.netsim.tap` — a traffic ledger aggregating connections into
  named segments, the unit the amplification reports are computed over.
* :mod:`repro.netsim.overhead` — optional analytic TCP/IP framing
  overhead, off by default.
* :mod:`repro.netsim.bandwidth` — a fluid-flow link/transfer simulator
  used for the paper's fourth experiment (Fig 7).
"""

from __future__ import annotations

from repro.netsim.bandwidth import FluidSimulator, Link, LinkSample, Transfer
from repro.netsim.clock import SimClock
from repro.netsim.connection import Connection, ExchangeRecord
from repro.netsim.overhead import (
    Http2FramingModel,
    NullOverheadModel,
    OverheadModel,
    TcpOverheadModel,
)
from repro.netsim.tap import SegmentStats, TrafficLedger

__all__ = [
    "Connection",
    "ExchangeRecord",
    "FluidSimulator",
    "Http2FramingModel",
    "Link",
    "LinkSample",
    "NullOverheadModel",
    "OverheadModel",
    "SegmentStats",
    "SimClock",
    "TcpOverheadModel",
    "TrafficLedger",
    "Transfer",
]
