"""Deterministic simulation clock."""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """A monotonically advancing simulated clock (seconds as floats)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds; returns the new time."""
        if delta < 0:
            raise SimulationError(f"cannot advance the clock by {delta} (negative)")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to the absolute instant ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot move the clock backwards from {self._now} to {when}"
            )
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now})"
