"""Structured trace export for attack runs.

The paper's evidence is packet captures; the simulator's equivalent is
the traffic ledger.  This module flattens a ledger into an ordered event
stream and serializes it as JSON Lines, so runs can be archived, diffed
across versions, or post-processed with standard tooling.

When a :class:`~repro.obs.tracer.Tracer` is active, each exchange also
carries the ``trace_id``/``span_id`` of the span it happened under, so
the event stream joins the span stream on those ids — one JSONL file
holds both (see :func:`dump_joined_jsonl`).  Both fields are optional
and omitted from JSON when unset, keeping untraced output byte-stable
across versions; :meth:`TraceEvent.from_json` ignores unknown keys so
either schema loads in either consumer.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple

from repro.netsim.tap import TrafficLedger


@dataclass(frozen=True)
class TraceEvent:
    """One request/response exchange, flattened for export."""

    sequence: int
    segment: str
    client: str
    server: str
    connection_index: int
    exchange_index: int
    status: int
    request_bytes: int
    response_bytes_sent: int
    response_bytes_delivered: int
    truncated: bool
    note: str
    #: Id of the span this exchange happened under (``None`` untraced).
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def to_json(self) -> str:
        payload = asdict(self)
        # Omit unset ids so untraced output is byte-identical to the
        # pre-observability schema.
        for key in ("trace_id", "span_id"):
            if payload[key] is None:
                del payload[key]
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        payload = json.loads(line)
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def ledger_events(ledger: TrafficLedger) -> List[TraceEvent]:
    """Flatten every exchange in ``ledger`` into ordered events.

    Ordering is per-connection creation order, then per-exchange order —
    the order the simulator produced them in.
    """
    events: List[TraceEvent] = []
    sequence = 0
    for connection_index, connection in enumerate(ledger.connections):
        for exchange_index, record in enumerate(connection.records):
            events.append(
                TraceEvent(
                    sequence=sequence,
                    segment=connection.segment,
                    client=connection.client_label,
                    server=connection.server_label,
                    connection_index=connection_index,
                    exchange_index=exchange_index,
                    status=record.status,
                    request_bytes=record.request_bytes,
                    response_bytes_sent=record.response_bytes_sent,
                    response_bytes_delivered=record.response_bytes_delivered,
                    truncated=record.truncated,
                    note=record.note,
                    trace_id=getattr(record, "trace_id", None),
                    span_id=getattr(record, "span_id", None),
                )
            )
            sequence += 1
    return events


def dump_jsonl(ledger: TrafficLedger, stream: IO[str]) -> int:
    """Write the ledger's events to ``stream`` as JSON Lines; returns the
    event count."""
    count = 0
    for event in ledger_events(ledger):
        stream.write(event.to_json())
        stream.write("\n")
        count += 1
    return count


def load_jsonl(stream: IO[str]) -> List[TraceEvent]:
    """Read events back from a JSON Lines stream."""
    return [TraceEvent.from_json(line) for line in stream if line.strip()]


def dump_joined_jsonl(
    events: Iterable[TraceEvent], spans: Iterable[Any], stream: IO[str]
) -> int:
    """Write one JSONL stream holding both exchanges and spans.

    Exchange lines use the plain :class:`TraceEvent` schema; span lines
    (any object with ``to_json()``, i.e. :class:`repro.obs.tracer.SpanRecord`)
    carry ``"kind": "span"``.  Consumers join the two on
    ``trace_id``/``span_id``.  Returns the total line count.
    """
    count = 0
    for event in events:
        stream.write(event.to_json())
        stream.write("\n")
        count += 1
    for span in spans:
        stream.write(span.to_json())
        stream.write("\n")
        count += 1
    return count


def load_joined_jsonl(stream: IO[str]) -> Tuple[List[TraceEvent], List[Any]]:
    """Read a joined stream back as ``(events, spans)``.

    Lines tagged ``"kind": "span"`` become
    :class:`~repro.obs.tracer.SpanRecord`; everything else is a
    :class:`TraceEvent`.
    """
    from repro.obs.tracer import SpanRecord

    events: List[TraceEvent] = []
    spans: List[Any] = []
    for line in stream:
        if not line.strip():
            continue
        if json.loads(line).get("kind") == "span":
            spans.append(SpanRecord.from_json(line))
        else:
            events.append(TraceEvent.from_json(line))
    return events, spans


def summarize(events: Iterable[TraceEvent]) -> Dict[str, Dict[str, int]]:
    """Per-segment totals, matching :meth:`TrafficLedger.segment_stats`."""
    totals: Dict[str, Dict[str, int]] = {}
    for event in events:
        bucket = totals.setdefault(
            event.segment,
            {"exchanges": 0, "request_bytes": 0, "response_bytes_sent": 0,
             "response_bytes_delivered": 0},
        )
        bucket["exchanges"] += 1
        bucket["request_bytes"] += event.request_bytes
        bucket["response_bytes_sent"] += event.response_bytes_sent
        bucket["response_bytes_delivered"] += event.response_bytes_delivered
    return totals
