"""Structured trace export for attack runs.

The paper's evidence is packet captures; the simulator's equivalent is
the traffic ledger.  This module flattens a ledger into an ordered event
stream and serializes it as JSON Lines, so runs can be archived, diffed
across versions, or post-processed with standard tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import IO, Dict, Iterable, List

from repro.netsim.tap import TrafficLedger


@dataclass(frozen=True)
class TraceEvent:
    """One request/response exchange, flattened for export."""

    sequence: int
    segment: str
    client: str
    server: str
    connection_index: int
    exchange_index: int
    status: int
    request_bytes: int
    response_bytes_sent: int
    response_bytes_delivered: int
    truncated: bool
    note: str

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        payload = json.loads(line)
        return cls(**payload)


def ledger_events(ledger: TrafficLedger) -> List[TraceEvent]:
    """Flatten every exchange in ``ledger`` into ordered events.

    Ordering is per-connection creation order, then per-exchange order —
    the order the simulator produced them in.
    """
    events: List[TraceEvent] = []
    sequence = 0
    for connection_index, connection in enumerate(ledger.connections):
        for exchange_index, record in enumerate(connection.records):
            events.append(
                TraceEvent(
                    sequence=sequence,
                    segment=connection.segment,
                    client=connection.client_label,
                    server=connection.server_label,
                    connection_index=connection_index,
                    exchange_index=exchange_index,
                    status=record.status,
                    request_bytes=record.request_bytes,
                    response_bytes_sent=record.response_bytes_sent,
                    response_bytes_delivered=record.response_bytes_delivered,
                    truncated=record.truncated,
                    note=record.note,
                )
            )
            sequence += 1
    return events


def dump_jsonl(ledger: TrafficLedger, stream: IO[str]) -> int:
    """Write the ledger's events to ``stream`` as JSON Lines; returns the
    event count."""
    count = 0
    for event in ledger_events(ledger):
        stream.write(event.to_json())
        stream.write("\n")
        count += 1
    return count


def load_jsonl(stream: IO[str]) -> List[TraceEvent]:
    """Read events back from a JSON Lines stream."""
    return [TraceEvent.from_json(line) for line in stream if line.strip()]


def summarize(events: Iterable[TraceEvent]) -> Dict[str, Dict[str, int]]:
    """Per-segment totals, matching :meth:`TrafficLedger.segment_stats`."""
    totals: Dict[str, Dict[str, int]] = {}
    for event in events:
        bucket = totals.setdefault(
            event.segment,
            {"exchanges": 0, "request_bytes": 0, "response_bytes_sent": 0,
             "response_bytes_delivered": 0},
        )
        bucket["exchanges"] += 1
        bucket["request_bytes"] += event.request_bytes
        bucket["response_bytes_sent"] += event.response_bytes_sent
        bucket["response_bytes_delivered"] += event.response_bytes_delivered
    return totals
