"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the
subsystems: HTTP parsing/serialization, the network simulator, the origin
server, and the CDN simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class UsageError(ReproError):
    """The tool was invoked incorrectly (bad flag combination, missing or
    malformed input file).

    CLI commands map this to exit code 2, distinguishing "you called me
    wrong" from "I ran and found problems" (exit code 1).
    """


# ---------------------------------------------------------------------------
# HTTP substrate
# ---------------------------------------------------------------------------

class HttpError(ReproError):
    """Base class for HTTP message-level errors."""


class HeaderError(HttpError):
    """Malformed header name or value (e.g. embedded CR/LF)."""


class MessageError(HttpError):
    """Structurally invalid HTTP message (bad request line, body mismatch)."""


class RangeError(HttpError):
    """Base class for Range-header problems."""


class RangeParseError(RangeError):
    """The Range header value does not match the RFC 7233 grammar."""


class RangeNotSatisfiableError(RangeError):
    """All requested byte ranges fall outside the representation.

    Maps to an HTTP 416 (Range Not Satisfiable) response.
    """

    def __init__(self, message: str, complete_length: int) -> None:
        super().__init__(message)
        #: Total length of the representation the ranges were resolved
        #: against; used to build the ``Content-Range: bytes */N`` header.
        self.complete_length = complete_length


class MultipartError(HttpError):
    """Malformed ``multipart/byteranges`` payload."""


# ---------------------------------------------------------------------------
# Network simulator
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class ConnectionAbortedError_(NetworkError):
    """The simulated peer aborted the connection mid-transfer.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`ConnectionAbortedError`.
    """


class SimulationError(NetworkError):
    """Invalid use of the bandwidth/clock simulation (e.g. time going
    backwards, negative capacity)."""


# ---------------------------------------------------------------------------
# Origin server
# ---------------------------------------------------------------------------

class OriginError(ReproError):
    """Base class for origin-server errors."""


class ResourceNotFoundError(OriginError):
    """No resource is registered under the requested path."""

    def __init__(self, path: str) -> None:
        super().__init__(f"no resource registered at {path!r}")
        self.path = path


# ---------------------------------------------------------------------------
# CDN simulator
# ---------------------------------------------------------------------------

class CdnError(ReproError):
    """Base class for CDN-simulator errors."""


class RequestRejectedError(CdnError):
    """The CDN refused the request (e.g. header size limit exceeded).

    Carries the HTTP status code the CDN would answer with, so callers can
    turn the rejection into a proper response.
    """

    def __init__(self, message: str, status_code: int) -> None:
        super().__init__(message)
        self.status_code = status_code


class UnknownVendorError(CdnError):
    """No vendor profile is registered under the requested name."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown CDN vendor {name!r}")
        self.name = name


class ConfigurationError(CdnError):
    """Invalid vendor or deployment configuration."""
