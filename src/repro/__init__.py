"""RangeAmp: a reproduction of *CDN Backfired: Amplification Attacks
Based on HTTP Range Requests* (DSN 2020).

The library builds a wire-accurate HTTP/CDN simulation substrate —
origin server, 13 CDN vendor behavior profiles, per-segment traffic
taps — and on top of it the paper's two attacks:

* **SBR** (Small Byte Range): tiny range request in, whole resource out
  of the origin (:class:`repro.core.sbr.SbrAttack`);
* **OBR** (Overlapping Byte Ranges): n overlapping ranges through a lazy
  front CDN, an n-part multipart out of the back CDN
  (:class:`repro.core.obr.ObrAttack`);
* **CCFC** (Compression Format Conversion, arXiv 2409.00712): the edge
  rewrites Accept-Encoding upstream, pulls a compressed body from the
  origin, and ships the decompressed bytes to an identity-only client
  (:class:`repro.core.ccfc.CcfcAttack`).

Quickstart::

    from repro import SbrAttack

    result = SbrAttack("akamai", resource_size=25 * 1024 * 1024).run()
    print(f"amplification: {result.amplification:.0f}x")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from __future__ import annotations

from repro.cdn.cluster import EdgeCluster
from repro.cdn.vendors import all_vendor_names, create_profile
from repro.clienttools.downloader import ResumingDownload, SegmentedDownloader
from repro.core.amplification import AmplificationReport
from repro.core.cachebusting import CacheBuster
from repro.core.campaign import CampaignResult, SbrCampaign
from repro.core.ccfc import CcfcAttack, CcfcResult
from repro.core.connection_drop import ConnectionDropAttack, compare_with_sbr
from repro.core.deployment import CdnSpec, Client, Deployment
from repro.core.economics import estimate_obr_campaign, estimate_sbr_campaign
from repro.core.feasibility import FeasibilityProbe, survey
from repro.core.obr import ObrAttack, ObrResult, vulnerable_combinations
from repro.core.practical import BandwidthAttackSimulation, BandwidthRunResult
from repro.core.sbr import SbrAttack, SbrResult, exploited_range_cases, sweep_resource_sizes
from repro.defense.detection import RangeAmpDetector
from repro.defense.mitigations import (
    MitigatedProfile,
    with_bounded_expansion,
    with_laziness,
    with_overlap_rejection,
    with_slicing,
)
from repro.errors import ReproError
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    FlakyOrigin,
    RetryPolicy,
    current_faults,
    retry_policy_for,
    use_faults,
)
from repro.faults.experiment import FaultedSbrResult, measure_sbr_under_faults
from repro.netsim.overhead import Http2FramingModel, TcpOverheadModel
from repro.origin.server import OriginServer

__version__ = "1.0.0"

__all__ = [
    "AmplificationReport",
    "BandwidthAttackSimulation",
    "BandwidthRunResult",
    "CacheBuster",
    "CampaignResult",
    "CcfcAttack",
    "CcfcResult",
    "CdnSpec",
    "Client",
    "ConnectionDropAttack",
    "Deployment",
    "EdgeCluster",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "FaultedSbrResult",
    "FeasibilityProbe",
    "FlakyOrigin",
    "Http2FramingModel",
    "MitigatedProfile",
    "ObrAttack",
    "ObrResult",
    "OriginServer",
    "RangeAmpDetector",
    "ReproError",
    "ResumingDownload",
    "RetryPolicy",
    "SbrAttack",
    "SbrCampaign",
    "SbrResult",
    "SegmentedDownloader",
    "TcpOverheadModel",
    "__version__",
    "all_vendor_names",
    "compare_with_sbr",
    "create_profile",
    "current_faults",
    "estimate_obr_campaign",
    "estimate_sbr_campaign",
    "exploited_range_cases",
    "measure_sbr_under_faults",
    "retry_policy_for",
    "survey",
    "sweep_resource_sizes",
    "use_faults",
    "vulnerable_combinations",
    "with_bounded_expansion",
    "with_laziness",
    "with_overlap_rejection",
    "with_slicing",
]
