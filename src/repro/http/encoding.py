"""Content-coding negotiation primitives (RFC 7231 §5.3.4).

The CCFC attack (arXiv 2409.00712) abuses how CDNs rewrite the
``Accept-Encoding`` request header on the way to the origin, so the
library needs a small, deterministic model of the header's grammar: a
comma-separated list of codings, each optionally weighted with a
``;q=`` parameter.  Weights only matter here as an on/off switch —
``q=0`` means "not acceptable" — because the simulation negotiates the
*smallest* acceptable variant, not the client-preferred one (that is
exactly the CDN-egress-minimizing behavior the attack exploits).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: The coding name an unencoded representation negotiates under.
IDENTITY = "identity"


def parse_accept_encoding(value: Optional[str]) -> Tuple[Tuple[str, float], ...]:
    """Parse an ``Accept-Encoding`` value into ``(coding, qvalue)`` pairs.

    Codings are lower-cased; empty elements are dropped; a malformed or
    missing ``q`` parameter defaults to 1.0.  ``None`` parses to an
    empty tuple (header absent).
    """
    if value is None:
        return ()
    parsed: List[Tuple[str, float]] = []
    for element in value.split(","):
        element = element.strip()
        if not element:
            continue
        coding, _, params = element.partition(";")
        coding = coding.strip().lower()
        if not coding:
            continue
        quality = 1.0
        params = params.strip()
        if params.lower().startswith("q="):
            try:
                quality = float(params[2:].strip())
            except ValueError:
                quality = 1.0
        parsed.append((coding, quality))
    return tuple(parsed)


def accepts_encoding(header: Optional[str], coding: str) -> bool:
    """Is ``coding`` acceptable under an ``Accept-Encoding`` header?

    * An **absent** header (``None``) imposes no constraint — any coding
      is acceptable (RFC 7231 §5.3.4 item 1).
    * A listed coding is acceptable unless its qvalue is 0.
    * ``*`` matches any coding not explicitly listed.
    * ``identity`` is always acceptable unless explicitly refused
      (``identity;q=0`` or ``*;q=0`` with identity unlisted).
    """
    coding = coding.lower()
    if header is None:
        return True
    parsed = parse_accept_encoding(header)
    wildcard: Optional[float] = None
    for name, quality in parsed:
        if name == coding:
            return quality > 0.0
        if name == "*":
            wildcard = quality
    if wildcard is not None:
        return wildcard > 0.0
    return coding == IDENTITY


def accepted_codings(header: Optional[str], available: Tuple[str, ...]) -> Tuple[str, ...]:
    """The subset of ``available`` codings acceptable under ``header``,
    preserving the order of ``available``."""
    return tuple(c for c in available if accepts_encoding(header, c))


__all__ = [
    "IDENTITY",
    "accepted_codings",
    "accepts_encoding",
    "parse_accept_encoding",
]
