"""Deterministic generation of valid ``Range`` headers from the RFC ABNF.

The paper's first experiment probes each CDN with "a large number of
valid range requests automatically generated based on the ABNF rules
described in the RFCs" and classifies the forwarding behavior per range
*format*.  This module produces that dataset: a corpus of
:class:`RangeCase` objects, each a valid Range header value tagged with
the structural format it instantiates.

Generation is seeded and fully deterministic so the feasibility tables
are reproducible run-to-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence


class RangeFormat(Enum):
    """The structural range formats Tables I–III classify behavior by."""

    #: ``bytes=first-last`` — a closed single range.
    FIRST_LAST = "bytes=first-last"
    #: ``bytes=first-`` — an open-ended single range.
    FIRST_OPEN = "bytes=first-"
    #: ``bytes=-suffix`` — a suffix range.
    SUFFIX = "bytes=-suffix"
    #: ``bytes=first1-last1,...,firstn-lastn`` — multiple closed ranges.
    MULTI_CLOSED = "bytes=first1-last1,...,firstn-lastn"
    #: ``bytes=start1-,start2-,...,startn-`` — multiple open (overlapping)
    #: ranges; the OBR attack shape.
    MULTI_OPEN = "bytes=start1-,start2-,...,startn-"
    #: ``bytes=-suffix,start2-,...,startn-`` — a suffix range followed by
    #: open ranges (the CDN77 OBR case from Table V).
    SUFFIX_THEN_OPEN = "bytes=-suffix,start2-,...,startn-"
    #: ``bytes=1-,0-,...,0-`` — overlapping open ranges led by ``1-``
    #: (the CDNsun OBR case from Table V).
    MULTI_OPEN_LEAD_ONE = "bytes=1-,start2-,...,startn-"


@dataclass(frozen=True)
class RangeCase:
    """One generated Range header and the format it instantiates."""

    format: RangeFormat
    header_value: str
    description: str


# ---------------------------------------------------------------------------
# Attack-shaped builders (exact strings, no randomness)
# ---------------------------------------------------------------------------

def single_range_value(first: int, last: Optional[int] = None) -> str:
    """``bytes=first-last`` or ``bytes=first-``."""
    return f"bytes={first}-" if last is None else f"bytes={first}-{last}"


def suffix_range_value(suffix_length: int) -> str:
    """``bytes=-suffix``."""
    return f"bytes=-{suffix_length}"


def overlapping_open_ranges_value(
    count: int,
    start: int = 0,
    leading: Optional[str] = None,
) -> str:
    """Build the OBR multi-range value ``bytes=0-,0-,...,0-``.

    ``leading`` optionally replaces the first spec — e.g. ``"-1024"`` for
    the CDN77 case or ``"1-"`` for CDNsun, matching Table V's exploited
    range cases.

    >>> overlapping_open_ranges_value(3)
    'bytes=0-,0-,0-'
    >>> overlapping_open_ranges_value(3, leading='-1024')
    'bytes=-1024,0-,0-'
    """
    if count < 1:
        raise ValueError(f"need at least one range, got {count}")
    specs = [f"{start}-"] * count
    if leading is not None:
        specs[0] = leading
    return "bytes=" + ",".join(specs)


def obr_value_size(count: int, start: int = 0, leading: Optional[str] = None) -> int:
    """Byte length of :func:`overlapping_open_ranges_value`'s output.

    Computed analytically so max-n searches do not build megabyte strings
    just to measure them.
    """
    if count < 1:
        raise ValueError(f"need at least one range, got {count}")
    spec_len = len(f"{start}-")
    total = len("bytes=") + count * spec_len + (count - 1)
    if leading is not None:
        total += len(leading) - spec_len
    return total


def max_overlapping_ranges_for_value_size(
    limit: int,
    start: int = 0,
    leading: Optional[str] = None,
) -> int:
    """Largest ``n`` with ``obr_value_size(n) <= limit`` (0 if even one
    range does not fit)."""
    if obr_value_size(1, start, leading) > limit:
        return 0
    spec_len = len(f"{start}-")
    # size(n) = base + n*(spec_len+1) - 1, with base adjusted for leading.
    base = len("bytes=") - 1
    if leading is not None:
        base += len(leading) - spec_len
    n = (limit - base) // (spec_len + 1)
    # Guard against off-by-one from the adjustment above.
    while obr_value_size(n + 1, start, leading) <= limit:
        n += 1
    while n > 1 and obr_value_size(n, start, leading) > limit:
        n -= 1
    return n


# ---------------------------------------------------------------------------
# Corpus generation (experiment 1 dataset)
# ---------------------------------------------------------------------------

class RangeCorpusGenerator:
    """Seeded generator of valid Range header corpora."""

    def __init__(self, file_size: int = 1024, seed: int = 7233) -> None:
        if file_size < 4:
            raise ValueError("file_size must be at least 4 bytes")
        self.file_size = file_size
        self._rng = random.Random(seed)

    # -- single-range cases ---------------------------------------------------

    def single_range_cases(self, count: int = 20) -> List[RangeCase]:
        """Closed ``first-last`` single ranges, skewed toward small ranges
        at the start of the file (the SBR attack shape)."""
        cases = [
            RangeCase(RangeFormat.FIRST_LAST, "bytes=0-0", "first byte only"),
            RangeCase(RangeFormat.FIRST_LAST, f"bytes=0-{self.file_size - 1}", "whole file"),
            RangeCase(RangeFormat.FIRST_LAST, "bytes=1-1", "second byte only"),
        ]
        for _ in range(max(0, count - len(cases))):
            first = self._rng.randrange(0, self.file_size)
            last = self._rng.randrange(first, self.file_size)
            cases.append(
                RangeCase(
                    RangeFormat.FIRST_LAST,
                    single_range_value(first, last),
                    f"random closed range {first}-{last}",
                )
            )
        return cases

    def open_range_cases(self, count: int = 10) -> List[RangeCase]:
        """Open-ended ``first-`` single ranges."""
        cases = [RangeCase(RangeFormat.FIRST_OPEN, "bytes=0-", "whole file, open form")]
        for _ in range(max(0, count - len(cases))):
            first = self._rng.randrange(0, self.file_size)
            cases.append(
                RangeCase(
                    RangeFormat.FIRST_OPEN,
                    single_range_value(first),
                    f"open range from {first}",
                )
            )
        return cases

    def suffix_range_cases(self, count: int = 10) -> List[RangeCase]:
        """Suffix ``-N`` ranges, including the 1-byte SBR shape."""
        cases = [
            RangeCase(RangeFormat.SUFFIX, "bytes=-1", "last byte only"),
            RangeCase(RangeFormat.SUFFIX, f"bytes=-{self.file_size}", "whole file, suffix form"),
        ]
        for _ in range(max(0, count - len(cases))):
            suffix = self._rng.randrange(1, self.file_size + 1)
            cases.append(
                RangeCase(RangeFormat.SUFFIX, suffix_range_value(suffix), f"last {suffix} bytes")
            )
        return cases

    # -- multi-range cases ------------------------------------------------------

    def multi_closed_cases(self, count: int = 10, max_parts: int = 8) -> List[RangeCase]:
        """Disjoint multi-range requests (legitimate multipart usage)."""
        cases: List[RangeCase] = []
        for _ in range(count):
            parts = self._rng.randrange(2, max_parts + 1)
            cuts = sorted(self._rng.sample(range(self.file_size), min(parts * 2, self.file_size)))
            specs = [
                f"{cuts[i]}-{cuts[i + 1]}" for i in range(0, len(cuts) - 1, 2)
            ]
            if len(specs) < 2:
                specs = ["0-0", f"{self.file_size - 1}-{self.file_size - 1}"]
            cases.append(
                RangeCase(
                    RangeFormat.MULTI_CLOSED,
                    "bytes=" + ",".join(specs),
                    f"{len(specs)} disjoint closed ranges",
                )
            )
        return cases

    def multi_open_cases(self, counts: Sequence[int] = (2, 4, 16, 64)) -> List[RangeCase]:
        """Overlapping open-range requests (the OBR attack shape)."""
        return [
            RangeCase(
                RangeFormat.MULTI_OPEN,
                overlapping_open_ranges_value(n),
                f"{n} overlapping 0- ranges",
            )
            for n in counts
        ]

    def suffix_then_open_cases(self, counts: Sequence[int] = (2, 16, 64)) -> List[RangeCase]:
        """Suffix-led overlapping requests (the CDN77-compatible OBR shape)."""
        return [
            RangeCase(
                RangeFormat.SUFFIX_THEN_OPEN,
                overlapping_open_ranges_value(n, leading=f"-{self.file_size}"),
                f"suffix then {n - 1} overlapping 0- ranges",
            )
            for n in counts
        ]

    def multi_open_lead_one_cases(self, counts: Sequence[int] = (2, 16, 64)) -> List[RangeCase]:
        """Overlapping requests led by ``1-`` (the CDNsun-compatible OBR
        shape)."""
        return [
            RangeCase(
                RangeFormat.MULTI_OPEN_LEAD_ONE,
                overlapping_open_ranges_value(n, leading="1-"),
                f"1- then {n - 1} overlapping 0- ranges",
            )
            for n in counts
        ]

    def invalid_cases(self) -> List[str]:
        """Malformed Range header values (NOT valid per the ABNF).

        Used by robustness tests: RFC 7233 §3.1 requires recipients to
        *ignore* unparsable Range headers, so every one of these must
        yield a full 200 end-to-end, never an error or a crash.
        """
        return [
            "",
            "bytes",
            "bytes=",
            "bytes=-",
            "bytes=--1",
            "bytes=5-3",
            "bytes=a-b",
            "bytes=1-2-3",
            "bytes=0x00-0xFF",
            "bytes= - ",
            "bytes=,",
            "0-499",
            "=0-499",
            "bytes:0-499",
            "bytes=1-2;3-4",
            f"bytes={'9' * 400}x-",
        ]

    def full_corpus(self) -> List[RangeCase]:
        """The complete experiment-1 dataset."""
        return (
            self.single_range_cases()
            + self.open_range_cases()
            + self.suffix_range_cases()
            + self.multi_closed_cases()
            + self.multi_open_cases()
            + self.suffix_then_open_cases()
            + self.multi_open_lead_one_cases()
        )
