"""Byte-exact HTTP message bodies.

The SBR experiments move resources of up to 25 MB through the simulated
CDN pipeline, thirteen vendors at a time.  Allocating real buffers for
every transfer would be wasteful and slow, so bodies are modeled behind a
small :class:`Body` interface with three implementations:

* :class:`BytesBody` — a plain in-memory payload.
* :class:`SyntheticBody` — a deterministic, pattern-addressable payload of
  arbitrary length that supports slicing *without* materialization.  Byte
  ``i`` of a synthetic body is ``pattern[(offset + i) % len(pattern)]``,
  so any slice of a synthetic body materializes to exactly the same bytes
  as the corresponding slice of the materialized whole — a property the
  test suite checks with hypothesis.
* :class:`CompositeBody` — an ordered concatenation of other bodies, used
  to assemble ``multipart/byteranges`` payloads out of literal separators
  and (possibly synthetic) resource slices without copying.

All three report their exact wire length via ``len()``; the traffic
accounting throughout the library relies on it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Tuple, Union

DEFAULT_PATTERN = bytes(range(256))


class Body(ABC):
    """A read-only, length-exact HTTP payload."""

    @abstractmethod
    def __len__(self) -> int:
        """Exact payload length in bytes."""

    @abstractmethod
    def slice(self, start: int, stop: int) -> "Body":
        """Return bytes ``[start, stop)`` as a new body.

        Indices are clamped to ``[0, len(self)]``; a reversed or empty
        window yields an empty body.  Slicing never materializes synthetic
        content.
        """

    @abstractmethod
    def materialize(self) -> bytes:
        """Return the payload as real bytes."""

    def first(self, n: int) -> "Body":
        """Return the first ``n`` bytes as a new body."""
        return self.slice(0, n)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Body):
            return NotImplemented
        if len(self) != len(other):
            return False
        return self.materialize() == other.materialize()

    def __hash__(self) -> int:  # pragma: no cover - bodies are not dict keys
        return hash((len(self), self.materialize()))


class BytesBody(Body):
    """A body backed by an in-memory byte string."""

    __slots__ = ("_data",)

    def __init__(self, data: bytes = b"") -> None:
        self._data = bytes(data)

    def __len__(self) -> int:
        return len(self._data)

    def slice(self, start: int, stop: int) -> "BytesBody":
        start = max(0, min(start, len(self._data)))
        stop = max(start, min(stop, len(self._data)))
        return BytesBody(self._data[start:stop])

    def materialize(self) -> bytes:
        return self._data

    def __repr__(self) -> str:
        preview = self._data[:16]
        return f"BytesBody({len(self._data)} bytes, {preview!r}...)"


class SyntheticBody(Body):
    """A deterministic pattern body of arbitrary length.

    ``SyntheticBody(n)`` represents an ``n``-byte payload whose ``i``-th
    byte is ``pattern[(offset + i) % len(pattern)]``.  Slices share the
    pattern and shift the offset, so content is consistent between a slice
    of the body and the body of a slice.
    """

    __slots__ = ("_length", "_pattern", "_offset", "_slice_cache")

    #: Materializing more than this many bytes is almost always a bug in
    #: calling code (the whole point of the class is to avoid it).
    MATERIALIZE_LIMIT = 256 * 1024 * 1024

    #: Distinct (start, stop) windows remembered per instance.
    SLICE_CACHE_LIMIT = 64

    def __init__(self, length: int, pattern: bytes = DEFAULT_PATTERN, offset: int = 0) -> None:
        if length < 0:
            raise ValueError(f"body length must be >= 0, got {length}")
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self._length = length
        self._pattern = bytes(pattern)
        self._offset = offset % len(pattern)
        # Instances are immutable, so identical slices can be shared.
        # An n-part overlapping multipart (the OBR shape) slices the
        # same window n times; without the cache that is n allocations.
        self._slice_cache: Dict[Tuple[int, int], "SyntheticBody"] = {}

    @property
    def pattern(self) -> bytes:
        return self._pattern

    @property
    def offset(self) -> int:
        return self._offset

    def __len__(self) -> int:
        return self._length

    def slice(self, start: int, stop: int) -> "SyntheticBody":
        start = max(0, min(start, self._length))
        stop = max(start, min(stop, self._length))
        cached = self._slice_cache.get((start, stop))
        if cached is not None:
            return cached
        sliced = SyntheticBody(stop - start, self._pattern, self._offset + start)
        if len(self._slice_cache) < self.SLICE_CACHE_LIMIT:
            self._slice_cache[(start, stop)] = sliced
        return sliced

    def materialize(self) -> bytes:
        if self._length > self.MATERIALIZE_LIMIT:
            raise MemoryError(
                f"refusing to materialize {self._length} bytes of synthetic body"
            )
        reps = (self._offset + self._length) // len(self._pattern) + 1
        window = self._pattern * reps
        return window[self._offset:self._offset + self._length]

    def byte_at(self, index: int) -> int:
        """Return byte ``index`` without materializing anything else."""
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._pattern[(self._offset + index) % len(self._pattern)]

    def __repr__(self) -> str:
        return (
            f"SyntheticBody(length={self._length}, offset={self._offset}, "
            f"pattern={len(self._pattern)}B)"
        )


class CompositeBody(Body):
    """An ordered concatenation of bodies, with lazy materialization."""

    __slots__ = ("_parts", "_length")

    def __init__(self, parts: Iterable[Union[Body, bytes]] = ()) -> None:
        self._parts: List[Body] = [make_body(p) for p in parts]
        self._length = sum(len(p) for p in self._parts)

    def __len__(self) -> int:
        return self._length

    @property
    def parts(self) -> List[Body]:
        return list(self._parts)

    def slice(self, start: int, stop: int) -> "CompositeBody":
        start = max(0, min(start, self._length))
        stop = max(start, min(stop, self._length))
        picked: List[Body] = []
        position = 0
        for part in self._parts:
            part_end = position + len(part)
            if part_end > start and position < stop:
                picked.append(part.slice(max(0, start - position), stop - position))
            position = part_end
            if position >= stop:
                break
        return CompositeBody(picked)

    def materialize(self) -> bytes:
        return b"".join(part.materialize() for part in self._parts)

    def __repr__(self) -> str:
        return f"CompositeBody({len(self._parts)} parts, {self._length} bytes)"


def make_body(value: Union[Body, bytes, bytearray, memoryview, str, int, None]) -> Body:
    """Coerce common payload spellings to a :class:`Body`.

    * ``Body`` instances pass through unchanged.
    * ``bytes``-like values become :class:`BytesBody`.
    * ``str`` is encoded as UTF-8.
    * an ``int`` ``n`` becomes an ``n``-byte :class:`SyntheticBody`.
    * ``None`` becomes an empty body.
    """
    if value is None:
        return BytesBody(b"")
    if isinstance(value, Body):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return BytesBody(bytes(value))
    if isinstance(value, str):
        return BytesBody(value.encode("utf-8"))
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("cannot make a body from a bool")
    if isinstance(value, int):
        return SyntheticBody(value)
    raise TypeError(f"cannot make a body from {type(value).__name__}")
