"""``multipart/byteranges`` encoding and decoding (RFC 7233 Appendix A).

A multi-range 206 response carries one body *part* per requested range,
each introduced by a dash-boundary line and its own ``Content-Type`` /
``Content-Range`` headers.  The OBR attack's entire amplification comes
from this encoding: a server that honors ``n`` overlapping ``0-`` ranges
of a ``F``-byte resource emits roughly ``n * (F + part_overhead)`` bytes.

Wire format produced by :meth:`MultipartByteranges.to_body`::

    --BOUNDARY\r\n
    Content-Type: <type>\r\n
    Content-Range: bytes <s>-<e>/<N>\r\n
    \r\n
    <part payload>\r\n
    ...repeated per part...
    --BOUNDARY--\r\n

Part payloads are kept as :class:`~repro.http.body.Body` objects and
assembled into a :class:`~repro.http.body.CompositeBody`, so a
10,000-part response over a synthetic resource is sized exactly without
ever being materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import MultipartError
from repro.http.body import Body, BytesBody, CompositeBody, make_body
from repro.http.headers import Headers
from repro.http.ranges import ResolvedRange, format_content_range, parse_content_range

#: Boundary string used when the caller does not supply one.  Real servers
#: generate random boundaries; a fixed default keeps traffic accounting
#: deterministic (and its length is typical of Apache's).
DEFAULT_BOUNDARY = "00000000000000000001"


@dataclass(frozen=True)
class MultipartPart:
    """One part of a multipart/byteranges payload."""

    content_type: str
    content_range: ResolvedRange
    complete_length: int
    payload: Body

    def __post_init__(self) -> None:
        if len(self.payload) != self.content_range.length:
            raise MultipartError(
                f"part payload is {len(self.payload)} bytes but Content-Range "
                f"{self.content_range} declares {self.content_range.length}"
            )

    def header_blob(self) -> bytes:
        """The part's header block including the trailing blank line."""
        headers = Headers(
            [
                ("Content-Type", self.content_type),
                (
                    "Content-Range",
                    format_content_range(
                        self.content_range.start,
                        self.content_range.end,
                        self.complete_length,
                    ),
                ),
            ]
        )
        return headers.serialize() + b"\r\n"


class MultipartByteranges:
    """A full multipart/byteranges payload."""

    __slots__ = ("boundary", "parts")

    def __init__(self, parts: Sequence[MultipartPart], boundary: str = DEFAULT_BOUNDARY) -> None:
        if not boundary or len(boundary) > 70:
            raise MultipartError(f"invalid boundary {boundary!r}")
        self.boundary = boundary
        self.parts: Tuple[MultipartPart, ...] = tuple(parts)

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        resource_body: Body,
        ranges: Sequence[ResolvedRange],
        content_type: str,
        complete_length: Optional[int] = None,
        boundary: str = DEFAULT_BOUNDARY,
    ) -> "MultipartByteranges":
        """Assemble a multipart payload by slicing ``resource_body``.

        ``ranges`` must already be resolved (satisfiable) against the
        resource; no overlap checking is done here — deliberately, since
        modeling servers that *skip* that check is the point of the OBR
        reproduction.  Overlap rejection belongs in the server policy
        layer (:mod:`repro.cdn.multirange`).
        """
        complete = complete_length if complete_length is not None else len(resource_body)
        parts = [
            MultipartPart(
                content_type=content_type,
                content_range=r,
                complete_length=complete,
                payload=resource_body.slice(r.start, r.end + 1),
            )
            for r in ranges
        ]
        return cls(parts, boundary=boundary)

    # -- encoding -----------------------------------------------------------

    @property
    def content_type_header(self) -> str:
        """Value for the enclosing response's ``Content-Type`` header."""
        return f"multipart/byteranges; boundary={self.boundary}"

    def to_body(self) -> CompositeBody:
        """Encode to a lazily-materialized body."""
        delimiter = f"--{self.boundary}\r\n".encode("latin-1")
        closer = f"--{self.boundary}--\r\n".encode("latin-1")
        pieces: List[object] = []
        for part in self.parts:
            pieces.append(delimiter)
            pieces.append(part.header_blob())
            pieces.append(part.payload)
            pieces.append(b"\r\n")
        pieces.append(closer)
        return CompositeBody(pieces)

    def wire_size(self) -> int:
        """Exact encoded size in bytes (no materialization)."""
        delimiter_len = len(self.boundary) + 4  # "--" + boundary + CRLF
        closer_len = len(self.boundary) + 6  # "--" + boundary + "--" + CRLF
        total = closer_len
        for part in self.parts:
            total += delimiter_len + len(part.header_blob()) + len(part.payload) + 2
        return total

    def part_overhead(self, part: MultipartPart) -> int:
        """Encoded bytes a part adds beyond its payload."""
        return (len(self.boundary) + 4) + len(part.header_blob()) + 2

    # -- decoding -----------------------------------------------------------

    @classmethod
    def parse(cls, blob: bytes, boundary: str) -> "MultipartByteranges":
        """Decode a multipart/byteranges payload produced by :meth:`to_body`."""
        delimiter = f"--{boundary}\r\n".encode("latin-1")
        closer = f"--{boundary}--".encode("latin-1")
        closer_at = blob.rfind(closer)
        if closer_at < 0:
            raise MultipartError("missing closing boundary")
        body = blob[:closer_at]
        if not body.startswith(delimiter):
            raise MultipartError("payload does not start with the dash-boundary")
        chunks = body.split(delimiter)[1:]  # leading empty piece before first delimiter
        parts: List[MultipartPart] = []
        for chunk in chunks:
            head, sep, payload = chunk.partition(b"\r\n\r\n")
            if not sep:
                raise MultipartError("part is missing its blank line")
            if not payload.endswith(b"\r\n"):
                raise MultipartError("part payload is missing its trailing CRLF")
            payload = payload[:-2]
            headers = Headers.parse(head + b"\r\n" if head else b"")
            content_range_raw = headers.get("Content-Range")
            if content_range_raw is None:
                raise MultipartError("part is missing Content-Range")
            resolved, complete = parse_content_range(content_range_raw)
            if resolved is None or complete is None:
                raise MultipartError(f"unusable part Content-Range {content_range_raw!r}")
            parts.append(
                MultipartPart(
                    content_type=headers.get("Content-Type", "application/octet-stream"),
                    content_range=resolved,
                    complete_length=complete,
                    payload=BytesBody(payload),
                )
            )
        if not parts:
            raise MultipartError("multipart payload has no parts")
        return cls(parts, boundary=boundary)

    def __len__(self) -> int:
        return len(self.parts)

    def __repr__(self) -> str:
        return (
            f"MultipartByteranges({len(self.parts)} parts, "
            f"boundary={self.boundary!r}, {self.wire_size()} wire bytes)"
        )


def multipart_response_size(
    part_count: int,
    part_payload_length: int,
    complete_length: int,
    content_type: str = "application/octet-stream",
    boundary: str = DEFAULT_BOUNDARY,
) -> int:
    """Analytic wire size of a uniform n-part payload.

    Used by the OBR planner to predict amplification before running the
    pipeline; tested for exact agreement with :meth:`MultipartByteranges.wire_size`.
    """
    sample = MultipartPart(
        content_type=content_type,
        content_range=ResolvedRange(
            complete_length - part_payload_length, complete_length - 1
        ),
        complete_length=complete_length,
        payload=make_body(part_payload_length),
    )
    per_part = (len(boundary) + 4) + len(sample.header_blob()) + part_payload_length + 2
    return part_count * per_part + (len(boundary) + 6)
