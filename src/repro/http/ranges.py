"""RFC 7233 byte-range grammar: parsing, formatting, and resolution.

This module implements the ``Range`` and ``Content-Range`` header grammar
from RFC 7233 §2–§4::

    Range             = byte-ranges-specifier / other-ranges-specifier
    byte-ranges-specifier = bytes-unit "=" byte-range-set
    byte-range-set    = 1#( byte-range-spec / suffix-byte-range-spec )
    byte-range-spec   = first-byte-pos "-" [ last-byte-pos ]
    suffix-byte-range-spec = "-" suffix-length

plus the resolution rules of §2.1 (clamping ``last-byte-pos`` to the end
of the representation, unsatisfiable-spec skipping, the 416 condition)
and analysis helpers the CDN simulator and the attacks rely on:
overlap detection, coalescing, and span statistics.

Terminology note: throughout, byte positions are **inclusive** on both
ends, matching the RFC ("bytes=0-0" is the first byte).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import RangeNotSatisfiableError, RangeParseError

#: RFC 7230 optional whitespace, allowed around the commas of a
#: byte-range-set by the 1#rule list extension.
_OWS = " \t"


@dataclass(frozen=True)
class ByteRangeSpec:
    """``first-byte-pos "-" [ last-byte-pos ]`` — e.g. ``0-499`` or ``9500-``."""

    first: int
    last: Optional[int] = None

    def __post_init__(self) -> None:
        if self.first < 0:
            raise RangeParseError(f"first-byte-pos must be >= 0, got {self.first}")
        if self.last is not None and self.last < self.first:
            raise RangeParseError(
                f"last-byte-pos {self.last} precedes first-byte-pos {self.first}"
            )

    @property
    def is_open_ended(self) -> bool:
        """True for ``first-`` specs with no last-byte-pos."""
        return self.last is None

    def to_string(self) -> str:
        return f"{self.first}-" if self.last is None else f"{self.first}-{self.last}"

    def resolve(self, complete_length: int) -> Optional["ResolvedRange"]:
        """Resolve against a representation of ``complete_length`` bytes.

        Returns ``None`` when the spec is unsatisfiable (first-byte-pos at
        or past the end), per RFC 7233 §2.1.
        """
        if self.first >= complete_length:
            return None
        last = complete_length - 1 if self.last is None else min(self.last, complete_length - 1)
        return ResolvedRange(self.first, last)


@dataclass(frozen=True)
class SuffixByteRangeSpec:
    """``"-" suffix-length`` — the final ``suffix-length`` bytes."""

    suffix_length: int

    def __post_init__(self) -> None:
        if self.suffix_length < 0:
            raise RangeParseError(
                f"suffix-length must be >= 0, got {self.suffix_length}"
            )

    def to_string(self) -> str:
        return f"-{self.suffix_length}"

    def resolve(self, complete_length: int) -> Optional["ResolvedRange"]:
        """Resolve per RFC 7233 §2.1; ``-0`` is unsatisfiable."""
        if self.suffix_length == 0 or complete_length == 0:
            return None
        start = max(0, complete_length - self.suffix_length)
        return ResolvedRange(start, complete_length - 1)


RangeSpec = Union[ByteRangeSpec, SuffixByteRangeSpec]


@dataclass(frozen=True, order=True)
class ResolvedRange:
    """A satisfiable byte window ``[start, end]`` (inclusive) of a concrete
    representation."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid resolved range [{self.start}, {self.end}]")

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    def overlaps(self, other: "ResolvedRange") -> bool:
        return self.start <= other.end and other.start <= self.end

    def touches(self, other: "ResolvedRange") -> bool:
        """True when the two ranges overlap or are directly adjacent."""
        return self.start <= other.end + 1 and other.start <= self.end + 1

    def union(self, other: "ResolvedRange") -> "ResolvedRange":
        return ResolvedRange(min(self.start, other.start), max(self.end, other.end))


class RangeSpecifier:
    """A parsed ``Range`` header value: a unit plus one or more specs."""

    __slots__ = ("unit", "specs")

    def __init__(self, specs: Sequence[RangeSpec], unit: str = "bytes") -> None:
        if not specs:
            raise RangeParseError("byte-range-set must contain at least one spec")
        self.unit = unit
        self.specs: Tuple[RangeSpec, ...] = tuple(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSpecifier):
            return NotImplemented
        return self.unit == other.unit and self.specs == other.specs

    def __repr__(self) -> str:
        return f"RangeSpecifier({self.to_header_value()!r})"

    @property
    def is_multi(self) -> bool:
        return len(self.specs) > 1

    def to_header_value(self) -> str:
        """Serialize back to a ``Range`` header value (no added whitespace)."""
        return f"{self.unit}=" + ",".join(spec.to_string() for spec in self.specs)

    # -- resolution ---------------------------------------------------------

    def resolve(self, complete_length: int) -> List[ResolvedRange]:
        """Resolve every spec against ``complete_length``.

        Unsatisfiable specs are dropped (RFC 7233 §2.1); if *no* spec is
        satisfiable, :class:`RangeNotSatisfiableError` is raised — the
        HTTP 416 condition.
        """
        resolved: List[ResolvedRange] = []
        last_spec: Optional[RangeSpec] = None
        last_result: Optional[ResolvedRange] = None
        for spec in self.specs:
            # Repeated specs parse to a shared instance (see
            # ``parse_range_header``), so an identity memo resolves an
            # n-fold repeat with one computation.
            if spec is not last_spec:
                last_spec = spec
                last_result = spec.resolve(complete_length)
            if last_result:
                resolved.append(last_result)
        if not resolved:
            raise RangeNotSatisfiableError(
                f"no satisfiable ranges in {self.to_header_value()!r} "
                f"for a {complete_length}-byte representation",
                complete_length,
            )
        return resolved

    # -- analysis -----------------------------------------------------------

    def has_overlaps(self, complete_length: int) -> bool:
        """True when two or more satisfiable specs overlap."""
        try:
            resolved = self.resolve(complete_length)
        except RangeNotSatisfiableError:
            return False
        return ranges_overlap(resolved)

    def requested_bytes(self, complete_length: int) -> int:
        """Total bytes the client asked for (double-counting overlaps)."""
        try:
            return sum(r.length for r in self.resolve(complete_length))
        except RangeNotSatisfiableError:
            return 0


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_UNIT_RE = re.compile(r"^([!#$%&'*+.^_`|~0-9A-Za-z-]+)=(.*)$", re.DOTALL)
_BYTE_RANGE_RE = re.compile(r"^(\d+)-(\d*)$")
_SUFFIX_RANGE_RE = re.compile(r"^-(\d+)$")


def parse_range_header(value: str, strict_unit: bool = True) -> RangeSpecifier:
    """Parse a ``Range`` header value per the RFC 7233 grammar.

    Raises :class:`RangeParseError` for anything that does not match the
    ABNF.  When ``strict_unit`` is true (the default), a unit other than
    ``bytes`` is rejected — mirroring how real byte-range servers treat
    unknown units as a parse failure and fall back to a 200 response.
    """
    if value is None:
        raise RangeParseError("Range header value is None")
    match = _UNIT_RE.match(value.strip(_OWS))
    if not match:
        raise RangeParseError(f"malformed Range header {value!r}")
    unit, range_set = match.group(1), match.group(2)
    if strict_unit and unit != "bytes":
        raise RangeParseError(f"unsupported range unit {unit!r}")
    items = range_set.split(",")
    specs: List[RangeSpec] = []
    last_item: Optional[str] = None
    last_spec: Optional[RangeSpec] = None
    for raw in items:
        item = raw.strip(_OWS)
        if not item:
            # The 1#rule list grammar tolerates empty elements ("a,,b");
            # skip them rather than failing the whole header.
            continue
        # Attack-shaped headers repeat one spec thousands of times
        # ("0-,0-,0-,..."); specs are frozen, so repeats can share one
        # instance instead of re-running the grammar per element.
        if item == last_item and last_spec is not None:
            specs.append(last_spec)
            continue
        last_spec = _parse_spec(item, value)
        last_item = item
        specs.append(last_spec)
    if not specs:
        raise RangeParseError(f"empty byte-range-set in {value!r}")
    return RangeSpecifier(specs, unit=unit)


def _parse_spec(item: str, original: str) -> RangeSpec:
    byte_match = _BYTE_RANGE_RE.match(item)
    if byte_match:
        first = int(byte_match.group(1))
        last_raw = byte_match.group(2)
        last = int(last_raw) if last_raw else None
        if last is not None and last < first:
            raise RangeParseError(
                f"last-byte-pos {last} precedes first-byte-pos {first} in {original!r}"
            )
        return ByteRangeSpec(first, last)
    suffix_match = _SUFFIX_RANGE_RE.match(item)
    if suffix_match:
        return SuffixByteRangeSpec(int(suffix_match.group(1)))
    raise RangeParseError(f"malformed byte-range-spec {item!r} in {original!r}")


def try_parse_range_header(value: Optional[str]) -> Optional[RangeSpecifier]:
    """Like :func:`parse_range_header` but returns ``None`` on any failure.

    Matches the RFC 7233 requirement that a recipient MUST ignore a Range
    header it cannot parse (serving a 200 instead of erroring).
    """
    if value is None:
        return None
    try:
        return parse_range_header(value)
    except RangeParseError:
        return None


# ---------------------------------------------------------------------------
# Content-Range
# ---------------------------------------------------------------------------

_CONTENT_RANGE_RE = re.compile(r"^bytes (\d+)-(\d+)/(\d+|\*)$")
_CONTENT_RANGE_UNSAT_RE = re.compile(r"^bytes \*/(\d+)$")


def format_content_range(start: int, end: int, complete_length: Optional[int]) -> str:
    """Build a ``Content-Range`` value, e.g. ``bytes 0-0/1000``.

    ``complete_length=None`` produces the unknown-length form
    ``bytes 0-0/*``.
    """
    if start < 0 or end < start:
        raise ValueError(f"invalid content range [{start}, {end}]")
    suffix = "*" if complete_length is None else str(complete_length)
    return f"bytes {start}-{end}/{suffix}"


def format_unsatisfied_content_range(complete_length: int) -> str:
    """Build the 416-response form, ``bytes */N``."""
    return f"bytes */{complete_length}"


def parse_content_range(value: str) -> Tuple[Optional[ResolvedRange], Optional[int]]:
    """Parse a ``Content-Range`` value.

    Returns ``(range, complete_length)``; ``range`` is ``None`` for the
    unsatisfied ``bytes */N`` form, and ``complete_length`` is ``None``
    for the ``/*`` unknown-length form.
    """
    match = _CONTENT_RANGE_RE.match(value.strip())
    if match:
        start, end = int(match.group(1)), int(match.group(2))
        if end < start:
            raise RangeParseError(f"malformed Content-Range {value!r}")
        length_raw = match.group(3)
        complete = None if length_raw == "*" else int(length_raw)
        return ResolvedRange(start, end), complete
    unsat = _CONTENT_RANGE_UNSAT_RE.match(value.strip())
    if unsat:
        return None, int(unsat.group(1))
    raise RangeParseError(f"malformed Content-Range {value!r}")


# ---------------------------------------------------------------------------
# Range-set analysis helpers
# ---------------------------------------------------------------------------

def ranges_overlap(resolved: Sequence[ResolvedRange]) -> bool:
    """True when any two resolved ranges overlap."""
    ordered = sorted(resolved)
    return any(a.overlaps(b) for a, b in zip(ordered, ordered[1:]))


def coalesce_ranges(resolved: Sequence[ResolvedRange]) -> List[ResolvedRange]:
    """Merge overlapping or adjacent ranges into a minimal sorted set.

    This is the "coalesce" mitigation RFC 7233 §6.1 suggests for
    many-small-ranges requests.
    """
    if not resolved:
        return []
    ordered = sorted(resolved)
    merged = [ordered[0]]
    for current in ordered[1:]:
        if merged[-1].touches(current):
            merged[-1] = merged[-1].union(current)
        else:
            merged.append(current)
    return merged


def covering_span(resolved: Sequence[ResolvedRange]) -> ResolvedRange:
    """The smallest single range covering every range in the set."""
    if not resolved:
        raise ValueError("cannot span an empty range set")
    return ResolvedRange(min(r.start for r in resolved), max(r.end for r in resolved))


def total_resolved_bytes(resolved: Sequence[ResolvedRange]) -> int:
    """Sum of range lengths, double-counting overlaps (wire bytes sent)."""
    return sum(r.length for r in resolved)


def distinct_resolved_bytes(resolved: Sequence[ResolvedRange]) -> int:
    """Bytes of the representation actually covered (overlaps counted once)."""
    return sum(r.length for r in coalesce_ranges(resolved))
