"""Parsing serialized HTTP/1.1 messages back into objects.

The simulator mostly passes message *objects* between hops, but the
test suite (and any user gluing this library to real sockets or pcaps)
needs the inverse of ``serialize()``: byte-exact round-tripping of
requests and responses.  Bodies are delimited by ``Content-Length`` when
present, otherwise by the end of input (the connection-close framing the
simulator's responses use).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import MessageError
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse

_HEADER_END = b"\r\n\r\n"


def _split_head(blob: bytes, kind: str) -> Tuple[str, Headers, bytes]:
    """Split a serialized message into (start line, headers, body bytes)."""
    head, separator, body = blob.partition(_HEADER_END)
    if not separator:
        raise MessageError(f"serialized {kind} has no header terminator")
    start_line, _, header_blob = head.partition(b"\r\n")
    headers = Headers.parse(header_blob + b"\r\n" if header_blob else b"")
    return start_line.decode("latin-1"), headers, body


def _delimit_body(headers: Headers, body: bytes, kind: str) -> bytes:
    declared = headers.get_int("Content-Length")
    if declared is None:
        return body
    if declared > len(body):
        raise MessageError(
            f"{kind} declares Content-Length {declared} but only "
            f"{len(body)} body bytes are present"
        )
    return body[:declared]


def parse_request(blob: bytes) -> HttpRequest:
    """Parse a serialized HTTP/1.1 request (inverse of
    :meth:`HttpRequest.serialize`)."""
    start_line, headers, body = _split_head(blob, "request")
    parts = start_line.split(" ")
    if len(parts) != 3:
        raise MessageError(f"malformed request line {start_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/"):
        raise MessageError(f"malformed HTTP version {version!r}")
    return HttpRequest(
        method=method,
        target=target,
        headers=headers,
        body=_delimit_body(headers, body, "request"),
        version=version,
    )


def parse_response(blob: bytes) -> HttpResponse:
    """Parse a serialized HTTP/1.1 response (inverse of
    :meth:`HttpResponse.serialize`)."""
    start_line, headers, body = _split_head(blob, "response")
    parts = start_line.split(" ", 2)
    if len(parts) < 2:
        raise MessageError(f"malformed status line {start_line!r}")
    version = parts[0]
    if not version.startswith("HTTP/"):
        raise MessageError(f"malformed HTTP version {version!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise MessageError(f"malformed status code {parts[1]!r}") from exc
    reason = parts[2] if len(parts) == 3 else ""
    return HttpResponse(
        status=status,
        headers=headers,
        body=_delimit_body(headers, body, "response"),
        reason=reason,
        version=version,
    )
