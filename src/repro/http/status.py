"""HTTP status codes and reason phrases used by the simulator."""

from __future__ import annotations

from enum import IntEnum


class StatusCode(IntEnum):
    """The subset of HTTP status codes the RangeAmp pipeline produces."""

    OK = 200
    PARTIAL_CONTENT = 206
    BAD_REQUEST = 400
    FORBIDDEN = 403
    NOT_FOUND = 404
    METHOD_NOT_ALLOWED = 405
    PAYLOAD_TOO_LARGE = 413
    TOO_MANY_REQUESTS = 429
    REQUEST_HEADER_FIELDS_TOO_LARGE = 431
    RANGE_NOT_SATISFIABLE = 416
    INTERNAL_SERVER_ERROR = 500
    BAD_GATEWAY = 502
    SERVICE_UNAVAILABLE = 503
    GATEWAY_TIMEOUT = 504


_REASONS = {
    StatusCode.OK: "OK",
    StatusCode.PARTIAL_CONTENT: "Partial Content",
    StatusCode.BAD_REQUEST: "Bad Request",
    StatusCode.FORBIDDEN: "Forbidden",
    StatusCode.NOT_FOUND: "Not Found",
    StatusCode.METHOD_NOT_ALLOWED: "Method Not Allowed",
    StatusCode.PAYLOAD_TOO_LARGE: "Payload Too Large",
    StatusCode.TOO_MANY_REQUESTS: "Too Many Requests",
    StatusCode.REQUEST_HEADER_FIELDS_TOO_LARGE: "Request Header Fields Too Large",
    StatusCode.RANGE_NOT_SATISFIABLE: "Range Not Satisfiable",
    StatusCode.INTERNAL_SERVER_ERROR: "Internal Server Error",
    StatusCode.BAD_GATEWAY: "Bad Gateway",
    StatusCode.SERVICE_UNAVAILABLE: "Service Unavailable",
    StatusCode.GATEWAY_TIMEOUT: "Gateway Timeout",
}


def reason_phrase(code: int) -> str:
    """Return the canonical reason phrase for ``code``.

    Unknown codes get the generic phrase ``"Unknown"`` rather than an
    error: reason phrases are advisory on the wire.
    """
    try:
        return _REASONS[StatusCode(code)]
    except ValueError:
        return "Unknown"
