"""HTTP/1.1 message substrate.

This package implements the pieces of HTTP/1.1 that the RangeAmp attacks
exercise, at wire-byte accuracy:

* :mod:`repro.http.headers` — ordered, case-insensitive header map.
* :mod:`repro.http.status` — status codes and reason phrases.
* :mod:`repro.http.body` — byte-exact bodies, including a synthetic body
  type that represents multi-megabyte payloads without allocating them.
* :mod:`repro.http.message` — :class:`HttpRequest` / :class:`HttpResponse`
  with exact wire serialization and size accounting.
* :mod:`repro.http.ranges` — the RFC 7233 ``Range`` / ``Content-Range``
  grammar: parsing, formatting, validation, and satisfiability resolution.
* :mod:`repro.http.multipart` — the ``multipart/byteranges`` codec.
* :mod:`repro.http.grammar` — deterministic generation of valid Range
  headers from the RFC ABNF (the paper's first-experiment dataset).
"""

from __future__ import annotations

from repro.http.body import Body, BytesBody, SyntheticBody, make_body
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.multipart import MultipartByteranges, MultipartPart
from repro.http.ranges import (
    ByteRangeSpec,
    RangeSpecifier,
    ResolvedRange,
    SuffixByteRangeSpec,
    format_content_range,
    format_unsatisfied_content_range,
    parse_content_range,
    parse_range_header,
)
from repro.http.status import StatusCode, reason_phrase

__all__ = [
    "Body",
    "ByteRangeSpec",
    "BytesBody",
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "MultipartByteranges",
    "MultipartPart",
    "RangeSpecifier",
    "ResolvedRange",
    "StatusCode",
    "SuffixByteRangeSpec",
    "SyntheticBody",
    "format_content_range",
    "format_unsatisfied_content_range",
    "make_body",
    "parse_content_range",
    "parse_range_header",
    "reason_phrase",
]
