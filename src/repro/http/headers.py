"""Ordered, case-insensitive HTTP header map.

HTTP header field names are case-insensitive (RFC 7230 §3.2), but their
order on the wire matters for byte accounting, and repeated fields (e.g.
``Via``, ``Set-Cookie``) are legal.  :class:`Headers` therefore stores an
ordered list of ``(name, value)`` pairs and provides case-insensitive
lookup on top of it.

Wire-size accounting is a first-class concern for this library: the
amplification factors reported by the paper are ratios of response bytes,
and header weight is exactly what differentiates the per-CDN slopes in
Fig 6a.  :meth:`Headers.wire_size` returns the exact number of bytes the
header block occupies when serialized (``name: value\\r\\n`` per field).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import HeaderError

#: Characters that must never appear inside a header name.
_TOKEN_FORBIDDEN = set(' \t\r\n:"(),/;<=>?@[\\]{}')


def _check_name(name: str) -> None:
    if not name:
        raise HeaderError("header name must be non-empty")
    for ch in name:
        if ch in _TOKEN_FORBIDDEN or ord(ch) < 0x21 or ord(ch) > 0x7E:
            raise HeaderError(f"invalid character {ch!r} in header name {name!r}")


def _check_value(value: str) -> None:
    if "\r" in value or "\n" in value:
        raise HeaderError(f"CR/LF injection in header value {value!r}")


class Headers:
    """An ordered multimap of HTTP header fields.

    >>> h = Headers([("Host", "example.com")])
    >>> h.set("Content-Length", "5")
    >>> h.get("host")
    'example.com'
    >>> h.wire_size()
    38
    """

    __slots__ = ("_items", "_size_cache")

    def __init__(self, items: Optional[Iterable[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        # Memoized wire_size(); invalidated by every mutation.  The
        # traffic accounting calls wire_size() at least twice per
        # message (origin stats + connection framing), and vendor
        # profiles re-measure their fixed response header blocks on
        # every exchange of a sweep.
        self._size_cache: Optional[int] = None
        if items is not None:
            for name, value in items:
                self.add(name, value)

    # -- mutation -----------------------------------------------------------

    def add(self, name: str, value: str) -> None:
        """Append a field, keeping any existing fields of the same name."""
        value = str(value)
        _check_name(name)
        _check_value(value)
        self._items.append((name, value))
        self._size_cache = None

    def set(self, name: str, value: str) -> None:
        """Replace all fields named ``name`` with a single field.

        The replacement occupies the position of the first existing field
        of that name, or is appended if the name is new.
        """
        value = str(value)
        _check_name(name)
        _check_value(value)
        lowered = name.lower()
        replaced = False
        kept: List[Tuple[str, str]] = []
        for item_name, item_value in self._items:
            if item_name.lower() == lowered:
                if not replaced:
                    kept.append((name, value))
                    replaced = True
            else:
                kept.append((item_name, item_value))
        if not replaced:
            kept.append((name, value))
        self._items = kept
        self._size_cache = None

    def remove(self, name: str) -> int:
        """Delete all fields named ``name``; return how many were removed."""
        lowered = name.lower()
        before = len(self._items)
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]
        self._size_cache = None
        return before - len(self._items)

    # -- lookup -------------------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the first value of ``name``, or ``default``."""
        lowered = name.lower()
        for item_name, item_value in self._items:
            if item_name.lower() == lowered:
                return item_value
        return default

    def get_all(self, name: str) -> List[str]:
        """Return every value of ``name``, in wire order."""
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def get_int(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """Return the first value of ``name`` parsed as an integer."""
        raw = self.get(name)
        if raw is None:
            return default
        try:
            return int(raw.strip())
        except ValueError as exc:
            raise HeaderError(f"header {name} is not an integer: {raw!r}") from exc

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        mine = [(n.lower(), v) for n, v in self._items]
        theirs = [(n.lower(), v) for n, v in other._items]
        return mine == theirs

    def items(self) -> List[Tuple[str, str]]:
        """Return a copy of the ordered ``(name, value)`` pairs."""
        return list(self._items)

    def names(self) -> List[str]:
        """Return the field names in wire order (duplicates preserved)."""
        return [n for n, _ in self._items]

    def copy(self) -> "Headers":
        """Return an independent copy of this header map."""
        clone = Headers()
        clone._items = list(self._items)
        clone._size_cache = self._size_cache
        return clone

    # -- serialization ------------------------------------------------------

    def serialize(self) -> bytes:
        """Serialize the header block, without the terminating blank line."""
        return b"".join(
            f"{name}: {value}\r\n".encode("latin-1") for name, value in self._items
        )

    def wire_size(self) -> int:
        """Exact byte length of :meth:`serialize`'s output (memoized)."""
        if self._size_cache is None:
            # name + ": " + value + CRLF
            self._size_cache = sum(
                len(name) + len(value) + 4 for name, value in self._items
            )
        return self._size_cache

    def field_line_size(self, name: str) -> int:
        """Wire size of the first field line named ``name`` (0 if absent).

        Several CDNs limit the size of a *single* header line (e.g.
        CDN77/CDNsun cap any one header at 16 KB); this helper measures
        against that limit.
        """
        lowered = name.lower()
        for item_name, item_value in self._items:
            if item_name.lower() == lowered:
                return len(item_name) + len(item_value) + 4
        return 0

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"

    @classmethod
    def parse(cls, blob: bytes) -> "Headers":
        """Parse a serialized header block (no terminating blank line)."""
        headers = cls()
        if not blob:
            return headers
        for line in blob.split(b"\r\n"):
            if not line:
                continue
            name, sep, value = line.partition(b":")
            if not sep:
                raise HeaderError(f"malformed header line {line!r}")
            headers.add(name.decode("latin-1").strip(), value.decode("latin-1").strip())
        return headers
