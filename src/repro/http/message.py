"""HTTP/1.1 request and response messages with exact wire accounting.

Every traffic number this library reports is derived from
:meth:`HttpRequest.wire_size` / :meth:`HttpResponse.wire_size`, which
count the serialized bytes of the start line, header block, blank line,
and body — exactly what a packet capture of the HTTP payload would show.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

from repro.errors import MessageError
from repro.http.body import Body, make_body
from repro.http.headers import Headers
from repro.http.status import StatusCode, reason_phrase

_BodyLike = Union[Body, bytes, str, int, None]


def _coerce_headers(headers: Union[Headers, Iterable[Tuple[str, str]], None]) -> Headers:
    if headers is None:
        return Headers()
    if isinstance(headers, Headers):
        return headers
    return Headers(headers)


class HttpRequest:
    """An HTTP/1.1 request.

    ``target`` is the request-target as it appears on the request line
    (path plus optional query string).  The ``Host`` header is kept in
    ``headers`` like any other field.
    """

    __slots__ = ("method", "target", "version", "headers", "body")

    def __init__(
        self,
        method: str = "GET",
        target: str = "/",
        headers: Union[Headers, Iterable[Tuple[str, str]], None] = None,
        body: _BodyLike = None,
        version: str = "HTTP/1.1",
    ) -> None:
        if not method or any(c.isspace() for c in method):
            raise MessageError(f"invalid method {method!r}")
        if not target or any(c in " \r\n" for c in target):
            raise MessageError(f"invalid request target {target!r}")
        self.method = method
        self.target = target
        self.version = version
        self.headers = _coerce_headers(headers)
        self.body = make_body(body)

    # -- convenience accessors ------------------------------------------------

    @property
    def host(self) -> Optional[str]:
        """Value of the ``Host`` header, if present."""
        return self.headers.get("Host")

    @property
    def path(self) -> str:
        """Request target with any query string removed."""
        return self.target.split("?", 1)[0]

    @property
    def query(self) -> str:
        """Query string (without the ``?``), or ``""``."""
        parts = self.target.split("?", 1)
        return parts[1] if len(parts) == 2 else ""

    @property
    def range_header(self) -> Optional[str]:
        """Raw value of the ``Range`` header, if present."""
        return self.headers.get("Range")

    # -- wire form --------------------------------------------------------------

    def request_line(self) -> str:
        return f"{self.method} {self.target} {self.version}"

    def request_line_size(self) -> int:
        """Bytes of the request line including its CRLF."""
        return len(self.request_line()) + 2

    def header_block_size(self) -> int:
        """Bytes from the first byte of the request line through the blank
        line that ends the header block."""
        return self.request_line_size() + self.headers.wire_size() + 2

    def wire_size(self) -> int:
        """Exact serialized size of the whole request in bytes."""
        return self.header_block_size() + len(self.body)

    def serialize(self) -> bytes:
        return (
            self.request_line().encode("latin-1")
            + b"\r\n"
            + self.headers.serialize()
            + b"\r\n"
            + self.body.materialize()
        )

    def copy(self) -> "HttpRequest":
        """Deep-enough copy: headers are copied, the (immutable) body is shared."""
        return HttpRequest(
            method=self.method,
            target=self.target,
            headers=self.headers.copy(),
            body=self.body,
            version=self.version,
        )

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.target}, {len(self.headers)} headers)"


class HttpResponse:
    """An HTTP/1.1 response."""

    __slots__ = ("status", "reason", "headers", "body", "version")

    def __init__(
        self,
        status: int,
        headers: Union[Headers, Iterable[Tuple[str, str]], None] = None,
        body: _BodyLike = None,
        reason: Optional[str] = None,
        version: str = "HTTP/1.1",
    ) -> None:
        status = int(status)
        if not 100 <= status <= 599:
            raise MessageError(f"invalid status code {status}")
        self.status = status
        self.reason = reason if reason is not None else reason_phrase(status)
        self.version = version
        self.headers = _coerce_headers(headers)
        self.body = make_body(body)

    # -- convenience accessors ------------------------------------------------

    @property
    def is_success(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_partial(self) -> bool:
        return self.status == StatusCode.PARTIAL_CONTENT

    @property
    def content_type(self) -> Optional[str]:
        return self.headers.get("Content-Type")

    def declared_content_length(self) -> Optional[int]:
        return self.headers.get_int("Content-Length")

    # -- wire form --------------------------------------------------------------

    def status_line(self) -> str:
        return f"{self.version} {self.status} {self.reason}"

    def status_line_size(self) -> int:
        return len(self.status_line()) + 2

    def header_block_size(self) -> int:
        return self.status_line_size() + self.headers.wire_size() + 2

    def wire_size(self) -> int:
        """Exact serialized size of the whole response in bytes."""
        return self.header_block_size() + len(self.body)

    def serialize(self) -> bytes:
        return (
            self.status_line().encode("latin-1")
            + b"\r\n"
            + self.headers.serialize()
            + b"\r\n"
            + self.body.materialize()
        )

    def copy(self) -> "HttpResponse":
        return HttpResponse(
            status=self.status,
            headers=self.headers.copy(),
            body=self.body,
            reason=self.reason,
            version=self.version,
        )

    def __repr__(self) -> str:
        return (
            f"HttpResponse({self.status} {self.reason}, "
            f"{len(self.headers)} headers, {len(self.body)} body bytes)"
        )
