"""CDN simulator.

The heart of the reproduction: a CDN edge-node model whose Range-header
handling is configurable per vendor, encoding the behaviors the paper
measured on 13 commercial CDNs (Tables I–III):

* :mod:`repro.cdn.policy` — the three forwarding policies (*Laziness*,
  *Deletion*, *Expansion*) and expansion arithmetic.
* :mod:`repro.cdn.window` — the slice of the resource a node holds after
  fetching from upstream.
* :mod:`repro.cdn.limits` — request-header size limits (they bound the
  OBR attack's ``n``).
* :mod:`repro.cdn.cache` — the edge cache (full-response caching keyed on
  the full URL, which is what query-string cache-busting defeats).
* :mod:`repro.cdn.multirange` — how a node replies to multi-range
  requests (honor / coalesce / first-only / reject).
* :mod:`repro.cdn.node` — the request pipeline tying it all together.
* :mod:`repro.cdn.vendors` — the 13 vendor profiles and their registry.
"""

from __future__ import annotations

from repro.cdn.cache import CacheStats, CdnCache
from repro.cdn.limits import HeaderLimits
from repro.cdn.multirange import MultiRangeReplyBehavior, apply_reply_behavior
from repro.cdn.node import CdnNode
from repro.cdn.policy import ForwardDecision, ForwardPolicy, mb_aligned_expansion
from repro.cdn.vendors import all_vendor_names, create_profile
from repro.cdn.vendors.base import FetchResult, VendorConfig, VendorContext, VendorProfile
from repro.cdn.window import ContentWindow

__all__ = [
    "CacheStats",
    "CdnCache",
    "CdnNode",
    "ContentWindow",
    "FetchResult",
    "ForwardDecision",
    "ForwardPolicy",
    "HeaderLimits",
    "MultiRangeReplyBehavior",
    "VendorConfig",
    "VendorContext",
    "VendorProfile",
    "all_vendor_names",
    "apply_reply_behavior",
    "create_profile",
    "mb_aligned_expansion",
]
