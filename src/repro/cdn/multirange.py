"""Multi-range reply behaviors (paper Table III).

RFC 7233 §6.1 advises servers to "ignore, coalesce, or reject" range
requests with many small or overlapping ranges.  The paper found three
CDNs that *honor* overlapping multi-range requests verbatim — Akamai,
Azure (up to 64 ranges), and StackPath — making them usable as the OBR
attack's amplifying back-end.  The rest follow the RFC's advice.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Sequence

from repro.errors import RangeNotSatisfiableError
from repro.http.ranges import ResolvedRange, coalesce_ranges


class MultiRangeReplyBehavior(Enum):
    """How a server replies to a multi-range request it can satisfy."""

    #: Build one part per requested range, overlap or not (vulnerable).
    HONOR = "honor"
    #: Merge overlapping/adjacent ranges first (RFC 7233 §6.1 advice).
    COALESCE = "coalesce"
    #: Serve only the first requested range as a single-part 206.
    FIRST_ONLY = "first-only"
    #: Refuse multi-range requests outright with a 416.
    REJECT = "reject"


def apply_reply_behavior(
    behavior: MultiRangeReplyBehavior,
    resolved: Sequence[ResolvedRange],
    complete_length: int,
    max_parts: Optional[int] = None,
) -> List[ResolvedRange]:
    """Return the ranges that will actually become response parts.

    ``max_parts`` (Azure's 64) applies after the behavior; exceeding it
    raises :class:`RangeNotSatisfiableError`, which the node turns into a
    416 — the signal the OBR max-n search keys on.
    """
    if not resolved:
        raise ValueError("apply_reply_behavior needs at least one resolved range")
    if len(resolved) == 1:
        parts = list(resolved)
    elif behavior is MultiRangeReplyBehavior.HONOR:
        parts = list(resolved)
    elif behavior is MultiRangeReplyBehavior.COALESCE:
        parts = coalesce_ranges(resolved)
    elif behavior is MultiRangeReplyBehavior.FIRST_ONLY:
        parts = [resolved[0]]
    elif behavior is MultiRangeReplyBehavior.REJECT:
        raise RangeNotSatisfiableError(
            f"multi-range request with {len(resolved)} ranges rejected",
            complete_length,
        )
    else:  # pragma: no cover - exhaustive over the enum
        raise AssertionError(f"unhandled behavior {behavior}")
    if max_parts is not None and len(parts) > max_parts:
        raise RangeNotSatisfiableError(
            f"{len(parts)} response parts exceed the {max_parts}-part limit",
            complete_length,
        )
    return parts
