"""Range-forwarding policies (paper §III-B).

When a CDN forwards a range request upstream it chooses one of three
policies for the ``Range`` header:

* **Laziness** — forward it unchanged.
* **Deletion** — remove it (fetch the whole representation).
* **Expansion** — widen it (fetch a larger window).

*Deletion* and *Expansion* are cache-friendly and are exactly what the
SBR attack exploits; *Laziness* at a front CDN combined with a
multipart-happy back CDN enables the OBR attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

MB = 1 << 20


class ForwardPolicy(Enum):
    """The three Range-forwarding policies from the paper."""

    LAZINESS = "laziness"
    DELETION = "deletion"
    EXPANSION = "expansion"


@dataclass(frozen=True)
class ForwardDecision:
    """What to do with the Range header on the upstream request.

    ``forwarded_range`` is the header value to send upstream — ``None``
    under *Deletion*, the original value under *Laziness*, and the
    widened value under *Expansion*.
    """

    policy: ForwardPolicy
    forwarded_range: Optional[str]

    @classmethod
    def lazy(cls, original_value: Optional[str]) -> "ForwardDecision":
        return cls(ForwardPolicy.LAZINESS, original_value)

    @classmethod
    def delete(cls) -> "ForwardDecision":
        return cls(ForwardPolicy.DELETION, None)

    @classmethod
    def expand(cls, new_value: str) -> "ForwardDecision":
        return cls(ForwardPolicy.EXPANSION, new_value)


def mb_aligned_expansion(
    first: int,
    last: int,
    chunk: int = MB,
    cap: Optional[int] = 10 * MB,
) -> Optional[Tuple[int, int]]:
    """CloudFront's megabyte-aligned expansion (paper §V-A item 3).

    ``first' = (first >> 20) << 20`` and
    ``last' = ((last >> 20) + 1 << 20) - 1`` — i.e. the range is widened
    to whole-MB boundaries.  Returns ``None`` when the widened window
    would exceed ``cap`` bytes (CloudFront's 10 485 760-byte multi-range
    limit), letting the caller fall back to another policy.

    >>> mb_aligned_expansion(0, 0)
    (0, 1048575)
    >>> mb_aligned_expansion(0, 9437184)
    (0, 10485759)
    >>> mb_aligned_expansion(0, 10485760) is None
    True
    """
    if first < 0 or last < first:
        raise ValueError(f"invalid range [{first}, {last}]")
    expanded_first = (first // chunk) * chunk
    expanded_last = (last // chunk + 1) * chunk - 1
    if cap is not None and expanded_last - expanded_first + 1 > cap:
        return None
    return expanded_first, expanded_last


def bounded_expansion(first: int, last: int, slack: int = 8 * 1024) -> Tuple[int, int]:
    """The mitigation-grade expansion from paper §VI-C: widen by at most
    ``slack`` bytes, so the front/back traffic difference stays small."""
    if first < 0 or last < first:
        raise ValueError(f"invalid range [{first}, {last}]")
    return first, last + slack
