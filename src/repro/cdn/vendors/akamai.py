"""Akamai profile.

Paper findings reproduced here:

* Table I — *Deletion* for ``bytes=first-last`` and ``bytes=-suffix``
  (modeled as Deletion for every Range format: Akamai always strips the
  header on the way to the origin).
* Table III — honors multi-range requests with overlapping ranges,
  building an n-part response (the strongest OBR back-end).
* §V-C — total request headers limited to 32 KB, which is what bounds
  the OBR ``n`` when Akamai is the BCDN.
* Fig 6a — Akamai inserts few response headers, so its SBR amplification
  slope is among the steepest (1 MB factor ≈ 1707).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.limits import HeaderLimits
from repro.cdn.multirange import MultiRangeReplyBehavior
from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import VendorContext, VendorProfile
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier


class AkamaiProfile(VendorProfile):
    name = "akamai"
    display_name = "Akamai"
    reply_behavior = MultiRangeReplyBehavior.HONOR
    server_header = "AkamaiGHost"
    # 53-character boundary: calibrated so the per-part overhead of an
    # n-part response matches Table V's measured bytes-per-part (~1159 B
    # for a 1 KB resource).
    multipart_boundary = "akamai" + "0123456789abcdef0123456789abcdef0123456789abcde"
    client_header_block_target = 613
    pad_header_name = "X-Akamai-Request-ID"

    def default_limits(self) -> HeaderLimits:
        return HeaderLimits(max_total_header_bytes=32 * 1024)

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        return ForwardDecision.delete()

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Via", "1.1 akamai.net(ghost)"),
            ("True-Client-IP", "198.51.100.7"),
        ]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-Cache", "TCP_MISS from a23-0-0-1"),
        ]
