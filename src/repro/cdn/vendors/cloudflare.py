"""Cloudflare profile.

Paper findings reproduced here:

* Table I — *Deletion* for ``bytes=first-last`` and ``bytes=-suffix``,
  conditional (*) on the target path being configured **cacheable**
  (the default caching behavior for static assets).
* Table II — forwards multi-range requests unchanged, conditional (*) on
  the target path being configured **Bypass**; an OBR attacker is a
  malicious customer and sets the rule themselves.
* §V-C — the measured constraint on Range-bearing requests,
  ``RL + 2·HHL + RHL <= 32411`` bytes, which caps the OBR ``n`` around
  10 750 when Cloudflare fronts Akamai or StackPath.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.limits import HeaderLimits, cloudflare_rule
from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import EncodingPolicy, VendorContext, VendorProfile
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier


class CloudflareProfile(VendorProfile):
    name = "cloudflare"
    display_name = "Cloudflare"
    server_header = "cloudflare"
    client_header_block_target = 817
    pad_header_name = "CF-RAY"
    # Paper Table 3 (arXiv 2409.00712): Cloudflare rewrites Accept-
    # Encoding to its own br/gzip preference and decompresses at the edge
    # when the client cannot accept the stored coding.
    encoding_policy = EncodingPolicy.REWRITE
    edge_accept_encoding = ("br", "gzip")
    edge_decompresses = True

    def default_limits(self) -> HeaderLimits:
        return HeaderLimits(custom=cloudflare_rule())

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        if ctx.config.bypass_cache:
            # The Bypass page rule disables caching — and with it the
            # cache-filling Deletion policy (the OBR front-end setting).
            return ForwardDecision.lazy(request.range_header)
        if ctx.config.cacheable:
            return ForwardDecision.delete()
        return ForwardDecision.lazy(request.range_header)

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [
            ("CF-Connecting-IP", "198.51.100.7"),
            ("X-Forwarded-Proto", "http"),
        ]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("CF-Cache-Status", "MISS"),
            ("Expect-CT", 'max-age=604800, report-uri="https://report-uri.cloudflare.com/cdn-cgi/beacon/expect-ct"'),
            ("Vary", "Accept-Encoding"),
        ]
