"""Huawei Cloud profile.

Paper findings reproduced here (Table I):

* For resources **under 10 MB**, *Deletion* applies to ``bytes=-suffix``
  requests (exploited case at small sizes: ``bytes=-1``).
* For resources of **10 MB or more**, *Deletion* applies to
  ``bytes=first-last`` requests (exploited case: ``bytes=0-0``).
* Both are conditional (*) on the customer's *Range* origin option being
  **enable** — note the polarity is the opposite of Alibaba/Tencent's
  option (paper §V-A item 1).

The size-dependent switch requires the edge to know the resource size
before forwarding; real CDNs know it from cached metadata, and the
simulator supplies it through ``VendorContext.resource_size_hint``
(populated by the deployment).  With no hint the resource is assumed
small, matching a cold cache.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import (
    EncodingPolicy,
    SpecShape,
    VendorConfig,
    VendorContext,
    VendorProfile,
    classify_spec,
)
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier

#: The behavior switch point from Table I.
SIZE_THRESHOLD = 10 * 1024 * 1024


class HuaweiProfile(VendorProfile):
    name = "huawei"
    display_name = "Huawei Cloud"
    server_header = "CDN"
    client_header_block_target = 715
    pad_header_name = "X-HCS-Request-Id"
    # arXiv 2409.00712 Table 3: Huawei Cloud CDN rewrites Accept-
    # Encoding to gzip and decompresses at the edge.
    encoding_policy = EncodingPolicy.REWRITE
    edge_accept_encoding = ("gzip",)
    edge_decompresses = True

    @classmethod
    def default_config(cls) -> VendorConfig:
        # Huawei's Range option defaults to "enable" — the vulnerable
        # setting for this vendor.
        return VendorConfig(origin_range_option=True)

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        if ctx.config.origin_range_option is False:
            # Option set to "disable": not vulnerable, forwards unchanged.
            return ForwardDecision.lazy(request.range_header)
        shape = classify_spec(spec)
        size = ctx.resource_size_hint
        large = size is not None and size >= SIZE_THRESHOLD
        if shape is SpecShape.SINGLE_SUFFIX and not large:
            return ForwardDecision.delete()
        if shape is SpecShape.SINGLE_CLOSED and large:
            return ForwardDecision.delete()
        if shape is SpecShape.MULTI:
            return ForwardDecision.delete()
        return ForwardDecision.lazy(request.range_header)

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [("X-Forwarded-For", "198.51.100.7")]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-Cache-Lookup", "Cache Miss"),
            ("Age", "0"),
        ]
