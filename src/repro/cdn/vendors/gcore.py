"""G-Core Labs profile.

Paper findings reproduced here:

* Table I — *Deletion* for ``bytes=first-last`` and ``bytes=-suffix``.
* Fig 6a — G-Core inserts the fewest response headers of the 13 CDNs,
  giving it the steepest SBR amplification slope (1 MB factor ≈ 1763,
  25 MB factor ≈ 43330 — the paper's headline number).
* §VII — G-Core's eventual fix was enabling their "slice" option by
  default, i.e. switching to the *Laziness* policy
  (see :mod:`repro.defense.mitigations`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import EncodingPolicy, VendorContext, VendorProfile
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier


class GcoreProfile(VendorProfile):
    name = "gcore"
    display_name = "G-Core Labs"
    server_header = "nginx"
    client_header_block_target = 594
    pad_header_name = "X-ID"
    # arXiv 2409.00712 Table 3: G-Core strips Accept-Encoding entirely
    # on the way to the origin, so the origin always serves identity.
    encoding_policy = EncodingPolicy.STRIP

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        return ForwardDecision.delete()

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [("X-Forwarded-For", "198.51.100.7")]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("Cache", "MISS"),
        ]
