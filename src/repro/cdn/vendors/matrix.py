"""The vendor behavior matrix: every profile's policy per Range shape.

A compact, directly-computed view of what Tables I and II encode —
useful for documentation, for quick lookups, and as a cross-check: the
test suite verifies that this matrix (derived by interrogating
``forward_decision`` directly) agrees with the feasibility experiment
(derived by observing traffic through a full deployment).  Two
independent measurement paths reaching the same table is the same
validation the paper gets from re-running its probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cdn.policy import ForwardPolicy
from repro.cdn.vendors import all_vendor_names, create_profile
from repro.cdn.vendors.base import VendorConfig, VendorContext
from repro.http.message import HttpRequest
from repro.http.ranges import try_parse_range_header

MB = 1 << 20

#: Probe cases: shape label -> (Range value, resource size hint).
#: Size-dependent vendors (Azure, Huawei) get both regimes.
PROBE_CASES: Dict[str, Tuple[str, int]] = {
    "first-last (small file)": ("bytes=0-0", 1 * MB),
    "first-last (large file)": ("bytes=0-0", 25 * MB),
    "first- (open)": ("bytes=5-", 1 * MB),
    "-suffix (small file)": ("bytes=-1", 1 * MB),
    "-suffix (large file)": ("bytes=-1", 25 * MB),
    "multi closed disjoint": ("bytes=0-0,100-200", 1 * MB),
    "multi open overlapping": ("bytes=0-,0-,0-", 1 * MB),
    "suffix then open": ("bytes=-1024,0-,0-", 1 * MB),
    "one then open": ("bytes=1-,0-,0-", 1 * MB),
}


@dataclass(frozen=True)
class MatrixCell:
    """One vendor's decision for one probe shape."""

    policy: ForwardPolicy
    forwarded_range: Optional[str]

    @property
    def amplifying(self) -> bool:
        return self.policy in (ForwardPolicy.DELETION, ForwardPolicy.EXPANSION)


def behavior_matrix(
    config_overrides: Optional[Dict[str, VendorConfig]] = None,
) -> Dict[str, Dict[str, MatrixCell]]:
    """Compute the full vendor x shape decision matrix.

    ``config_overrides`` swaps in non-default configs per vendor (e.g.
    Cloudflare under Bypass) — each probe otherwise uses the vendor's
    default configuration, as the paper's experiments did.

    Stateful vendors are probed on a *fresh* profile per cell, so KeyCDN
    shows its first-sighting behavior; its second-sighting Deletion is a
    separate, stateful fact the matrix annotates via
    :func:`stateful_second_request_policies`.
    """
    overrides = config_overrides or {}
    matrix: Dict[str, Dict[str, MatrixCell]] = {}
    for vendor in all_vendor_names():
        row: Dict[str, MatrixCell] = {}
        for shape, (range_value, size) in PROBE_CASES.items():
            profile = create_profile(vendor)
            config = overrides.get(vendor, profile.effective_config())
            decision = profile.forward_decision(
                _request(range_value),
                try_parse_range_header(range_value),
                VendorContext(config=config, resource_size_hint=size),
            )
            row[shape] = MatrixCell(
                policy=decision.policy, forwarded_range=decision.forwarded_range
            )
        matrix[vendor] = row
    return matrix


def stateful_second_request_policies() -> Dict[str, ForwardPolicy]:
    """Second-identical-request policy per vendor (KeyCDN's quirk)."""
    results: Dict[str, ForwardPolicy] = {}
    for vendor in all_vendor_names():
        profile = create_profile(vendor)
        ctx = VendorContext(config=profile.effective_config(), resource_size_hint=MB)
        request = _request("bytes=0-0")
        spec = try_parse_range_header("bytes=0-0")
        profile.forward_decision(request, spec, ctx)
        results[vendor] = profile.forward_decision(request, spec, ctx).policy
    return results


def sbr_vulnerable_vendors() -> Tuple[str, ...]:
    """Vendors with at least one amplifying single-range shape — the
    matrix-derived Table I membership (KeyCDN qualifies via its stateful
    second-request Deletion)."""
    matrix = behavior_matrix()
    single_shapes = [
        "first-last (small file)",
        "first-last (large file)",
        "first- (open)",
        "-suffix (small file)",
        "-suffix (large file)",
    ]
    second = stateful_second_request_policies()
    vulnerable = []
    for vendor, row in matrix.items():
        if any(row[s].amplifying for s in single_shapes):
            vulnerable.append(vendor)
        elif second[vendor] is ForwardPolicy.DELETION:
            vulnerable.append(vendor)
        elif create_profile(vendor).amplifies_via_fetch_flow:
            # StackPath: laziness in the table, amplification in the
            # fetch flow (refetch-without-Range after a 206).
            vulnerable.append(vendor)
    return tuple(sorted(vulnerable))


def obr_frontend_vendors(include_bypass: bool = True) -> Tuple[str, ...]:
    """Vendors that forward some overlapping multi-range shape unchanged
    — the matrix-derived Table II membership."""
    multi_shapes = ["multi open overlapping", "suffix then open", "one then open"]
    frontends = set()
    matrix = behavior_matrix()
    for vendor, row in matrix.items():
        if any(row[s].policy is ForwardPolicy.LAZINESS for s in multi_shapes):
            frontends.add(vendor)
    if include_bypass:
        bypassed = behavior_matrix(
            config_overrides={
                vendor: VendorConfig(bypass_cache=True)
                for vendor in all_vendor_names()
            }
        )
        for vendor, row in bypassed.items():
            if any(row[s].policy is ForwardPolicy.LAZINESS for s in multi_shapes):
                frontends.add(vendor)
    return tuple(sorted(frontends))


def _request(range_value: str) -> HttpRequest:
    return HttpRequest(
        "GET", "/probe.bin", headers=[("Host", "victim.example"), ("Range", range_value)]
    )
