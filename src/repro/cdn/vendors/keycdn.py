"""KeyCDN profile.

Paper findings reproduced here (§V-A item 4, Table I):

* The **first** time KeyCDN sees a given range request it applies
  *Laziness* and does not cache the partial response.
* The **second identical** request triggers *Deletion* — KeyCDN decides
  the object is worth prefetching and pulls the whole representation.
* An SBR attacker therefore sends every request twice
  (``bytes=0-0 & bytes=0-0`` in Table IV); the client-side traffic
  doubles, which is why KeyCDN's amplification factor is roughly half
  the others' (724 at 1 MB) while its CDN-to-client traffic is the
  largest in Fig 6b.

The first-request memory is per-profile-instance state, keyed on
``(host, target, range value)``.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.cdn.limits import HeaderLimits
from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import EncodingPolicy, SpecShape, VendorContext, VendorProfile, classify_spec
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier


class KeycdnProfile(VendorProfile):
    name = "keycdn"
    display_name = "KeyCDN"
    server_header = "keycdn-engine"
    client_header_block_target = 722
    pad_header_name = "X-Edge-Location"
    # arXiv 2409.00712 Table 3: KeyCDN rewrites Accept-Encoding to
    # gzip and decompresses at the edge.
    encoding_policy = EncodingPolicy.REWRITE
    edge_accept_encoding = ("gzip",)
    edge_decompresses = True

    def __init__(self, limits: Optional[HeaderLimits] = None) -> None:
        super().__init__(limits)
        self._seen: Set[Tuple[str, str, str]] = set()

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        shape = classify_spec(spec)
        if shape is SpecShape.MULTI:
            # KeyCDN is absent from Table II: multi-range requests are not
            # forwarded verbatim.
            return ForwardDecision.delete()
        if shape is not SpecShape.SINGLE_CLOSED:
            # Table I lists only bytes=first-last for KeyCDN; suffix and
            # open-ended ranges stay lazy on every sighting.
            return ForwardDecision.lazy(request.range_header)
        key = (request.host or "", request.target, request.range_header or "")
        if key in self._seen:
            return ForwardDecision.delete()
        self._seen.add(key)
        return ForwardDecision.lazy(request.range_header)

    def reset_seen(self) -> None:
        """Forget previously seen range requests (a fresh edge node)."""
        self._seen.clear()

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [("X-Forwarded-For", "198.51.100.7")]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-Cache", "MISS"),
            ("X-Shield", "active"),
        ]
