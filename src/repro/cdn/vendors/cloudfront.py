"""CloudFront profile.

Paper findings reproduced here (§V-A item 3):

* CloudFront applies *Expansion*, widening ranges to whole-megabyte
  boundaries: ``first' = (first >> 20) << 20`` and
  ``last' = ((last >> 20) + 1 << 20) - 1``.
* A multi-range request is collapsed to the single MB-aligned range
  covering all its specs — but only if that window is at most
  10 485 760 bytes; that cap is why CloudFront's SBR amplification
  plateaus once the target resource exceeds 10 MB (Fig 6a).
* The paper's exploited case ``bytes=0-0,9437184-9437184`` expands to
  ``bytes=0-10485759`` — a 10 MB back-to-origin fetch for a
  two-byte request.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.policy import ForwardDecision, mb_aligned_expansion
from repro.cdn.vendors.base import EncodingPolicy, SpecShape, VendorContext, VendorProfile, classify_spec
from repro.http.message import HttpRequest
from repro.http.ranges import ByteRangeSpec, RangeSpecifier

#: CloudFront's cap on the expanded window of a multi-range request.
MULTI_RANGE_WINDOW_CAP = 10 * 1024 * 1024


class CloudFrontProfile(VendorProfile):
    name = "cloudfront"
    display_name = "CloudFront"
    server_header = "CloudFront"
    client_header_block_target = 772
    pad_header_name = "X-Amz-Cf-Id"
    # arXiv 2409.00712 Table 3: CloudFront rewrites Accept-Encoding to
    # gzip and decompresses at the edge for identity-only clients.
    encoding_policy = EncodingPolicy.REWRITE
    edge_accept_encoding = ("gzip",)
    edge_decompresses = True

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        shape = classify_spec(spec)
        if shape is SpecShape.SINGLE_CLOSED:
            only = spec.specs[0]
            assert isinstance(only, ByteRangeSpec) and only.last is not None
            expanded = mb_aligned_expansion(only.first, only.last, cap=None)
            assert expanded is not None
            return ForwardDecision.expand(f"bytes={expanded[0]}-{expanded[1]}")
        if shape is SpecShape.MULTI:
            return self._multi_decision(request, spec)
        # Open-ended and suffix ranges have no last-byte-pos to align;
        # CloudFront forwards them unchanged.
        return ForwardDecision.lazy(request.range_header)

    def _multi_decision(self, request: HttpRequest, spec: RangeSpecifier) -> ForwardDecision:
        closed = [s for s in spec.specs if isinstance(s, ByteRangeSpec) and s.last is not None]
        if len(closed) != len(spec.specs):
            # Mixed multi-range with open/suffix specs: no alignment rule
            # applies; CloudFront fetches the whole representation rather
            # than relaying the header (it is absent from Table II, so it
            # must not forward overlapping multi-ranges verbatim).
            return ForwardDecision.delete()
        first = min(s.first for s in closed)
        last = max(s.last for s in closed)  # type: ignore[type-var]
        expanded = mb_aligned_expansion(first, last, cap=MULTI_RANGE_WINDOW_CAP)
        if expanded is not None:
            return ForwardDecision.expand(f"bytes={expanded[0]}-{expanded[1]}")
        # The covering window is too large: expand the first spec only.
        leading = closed[0]
        single = mb_aligned_expansion(leading.first, leading.last, cap=None)
        assert single is not None
        return ForwardDecision.expand(f"bytes={single[0]}-{single[1]}")

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Via", "1.1 2af9dd0e95bd8bbbe43d52b7d4b9b2ea.cloudfront.net (CloudFront)"),
            ("X-Amz-Cf-Id", "8LqvbH9S0zhbnMsJztGBQgpVxcgGq7TUoHvcl2XbVFQeCGtLPWrDSg=="),
        ]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-Cache", "Miss from cloudfront"),
            ("X-Amz-Cf-Pop", "IAD89-C1"),
        ]
