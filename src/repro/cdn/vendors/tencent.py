"""Tencent Cloud profile.

Paper findings reproduced here (Table I):

* *Deletion* for ``bytes=first-last``, conditional (*) on the customer's
  *Range* origin option being **disable** (the default the paper
  measured with; *enable* makes Tencent lazy and not vulnerable).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import (
    EncodingPolicy,
    SpecShape,
    VendorConfig,
    VendorContext,
    VendorProfile,
    classify_spec,
)
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier


class TencentProfile(VendorProfile):
    name = "tencent"
    display_name = "Tencent Cloud"
    server_header = "NWS_SPMid"
    client_header_block_target = 801
    pad_header_name = "X-NWS-LOG-UUID"
    # arXiv 2409.00712 Table 3: Tencent rewrites Accept-Encoding to
    # gzip but serves the compressed body as-is (no edge decompression),
    # so conversion amplification stays ~1.
    encoding_policy = EncodingPolicy.REWRITE
    edge_accept_encoding = ("gzip",)

    @classmethod
    def default_config(cls) -> VendorConfig:
        # The Range origin option defaults to "disable" — vulnerable.
        return VendorConfig(origin_range_option=False)

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        range_option_disabled = ctx.config.origin_range_option is not True
        shape = classify_spec(spec)
        if shape is SpecShape.SINGLE_CLOSED and range_option_disabled:
            return ForwardDecision.delete()
        if shape is SpecShape.MULTI:
            return ForwardDecision.delete()
        return ForwardDecision.lazy(request.range_header)

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [("X-Forwarded-For", "198.51.100.7")]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-Cache-Lookup", "Cache Miss"),
            ("X-Daa-Tunnel", "hop_count=1"),
        ]
