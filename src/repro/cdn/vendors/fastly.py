"""Fastly profile.

Paper findings reproduced here:

* Table I — *Deletion* for ``bytes=first-last`` and ``bytes=-suffix``.
* Fastly is in neither Table II nor Table III: it does not forward
  multi-range requests verbatim (modeled as Deletion for them too) and
  coalesces multi-range replies, so it is neither an OBR front-end nor
  back-end.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import EncodingPolicy, VendorContext, VendorProfile
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier


class FastlyProfile(VendorProfile):
    name = "fastly"
    display_name = "Fastly"
    server_header = "Varnish"
    client_header_block_target = 815
    pad_header_name = "X-Timer"
    # arXiv 2409.00712 Table 3: Fastly (Varnish do_gzip) rewrites
    # Accept-Encoding to gzip and inflates at the edge.
    encoding_policy = EncodingPolicy.REWRITE
    edge_accept_encoding = ("gzip",)
    edge_decompresses = True

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        return ForwardDecision.delete()

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Fastly-Client-IP", "198.51.100.7"),
            ("X-Varnish", "3241151398"),
        ]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-Served-By", "cache-fra19128-FRA"),
            ("X-Cache", "MISS"),
            ("X-Cache-Hits", "0"),
            ("Via", "1.1 varnish"),
        ]
