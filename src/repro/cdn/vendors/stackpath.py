"""StackPath profile.

Paper findings reproduced here (§V-A item 5, Tables I–III):

* Table I — StackPath first forwards a single-range request under
  *Laziness*; if the origin answers 206, it immediately re-forwards the
  request **without** the Range header over a second connection
  (``bytes=first-last [& None]``), making it SBR-vulnerable with origin
  traffic of one small 206 plus the full representation.
* Table II — multi-range requests are forwarded unchanged (OBR
  front-end); Table V shows a single back-end fetch for these, so the
  206-triggered re-forward applies to single-range requests only.
* Table III — honors overlapping multi-range requests (OBR back-end).
* §V-C — total request headers limited to ~81 KB.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.limits import HeaderLimits
from repro.cdn.multirange import MultiRangeReplyBehavior
from repro.cdn.policy import ForwardDecision, ForwardPolicy
from repro.cdn.vendors.base import (
    ExchangeFn,
    FetchResult,
    SpecShape,
    VendorContext,
    VendorProfile,
    classify_spec,
)
from repro.cdn.window import ContentWindow
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier
from repro.http.status import StatusCode


class StackpathProfile(VendorProfile):
    name = "stackpath"
    display_name = "StackPath"
    reply_behavior = MultiRangeReplyBehavior.HONOR
    server_header = "StackPath"
    # 69-character boundary, calibrated to Table V's per-part bytes.
    multipart_boundary = "sp" + "0123456789abcdef" * 4 + "012"
    client_header_block_target = 808
    pad_header_name = "X-SP-Request-Id"
    # The SBR vulnerability is in the fetch flow (lazy, then refetch the
    # whole representation on a 206), not the decision table.
    amplifies_via_fetch_flow = True

    def default_limits(self) -> HeaderLimits:
        return HeaderLimits(max_total_header_bytes=81 * 1024)

    def fetch(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
        exchange: ExchangeFn,
    ) -> FetchResult:
        if spec is None:
            return super().fetch(request, spec, ctx, exchange)

        lazy_request = self.build_upstream_request(
            request, ForwardDecision.lazy(request.range_header)
        )
        first = exchange(lazy_request, note="forward:laziness")
        if first.status == StatusCode.OK:
            # Origin ignored the Range header: serve from the full body
            # (the OBR back-end path).
            return FetchResult(
                window=ContentWindow.full(first.body),
                policy=ForwardPolicy.LAZINESS,
                upstream_status=200,
                cacheable_full=True,
                source_headers=first.headers,
            )
        if first.status != StatusCode.PARTIAL_CONTENT:
            return FetchResult(
                passthrough=first,
                policy=ForwardPolicy.LAZINESS,
                upstream_status=first.status,
            )
        if classify_spec(spec) is SpecShape.MULTI:
            # Multi-range 206s are relayed as-is (OBR front-end path).
            return FetchResult(
                passthrough=first,
                policy=ForwardPolicy.LAZINESS,
                upstream_status=206,
            )
        # Single-range 206: re-forward without the Range header to pull
        # and cache the whole representation.
        refetch = self.build_upstream_request(request, ForwardDecision.delete())
        second = exchange(refetch, note="forward:deletion (refetch after 206)")
        if second.status != StatusCode.OK:
            return FetchResult(
                passthrough=first,
                policy=ForwardPolicy.LAZINESS,
                upstream_status=first.status,
            )
        return FetchResult(
            window=ContentWindow.full(second.body),
            policy=ForwardPolicy.DELETION,
            upstream_status=200,
            cacheable_full=True,
            source_headers=second.headers,
        )

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Via", "1.1 varnish (StackPath)"),
            ("X-SP-Edge", "sp-edge-fra1"),
            ("X-Forwarded-For", "198.51.100.7"),
        ]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-HW", "1593932400.dop005.fr8.t,1593932400.cds020.fr8.c"),
            ("X-Cache", "MISS"),
        ]
