"""CDNsun profile.

Paper findings reproduced here:

* Table I — *Deletion* for ``bytes=0-last`` (ranges anchored at byte 0).
* Table II — forwards multi-range requests unchanged when the leading
  spec starts at byte 1 or later (``start_1 >= 1``); the paper's
  exploited OBR case through CDNsun is ``bytes=1-,0-,...,0-``.
* §V-C — single header line limited to 16 KB, capping the OBR ``n`` at
  5456 for the ``bytes=1-,0-,...,0-`` shape.

As with CDN77, one rule yields both rows: CDNsun deletes the Range
header when the first spec is anchored at byte 0, and is lazy otherwise.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.limits import HeaderLimits
from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import VendorContext, VendorProfile
from repro.http.message import HttpRequest
from repro.http.ranges import ByteRangeSpec, RangeSpecifier


class CdnsunProfile(VendorProfile):
    name = "cdnsun"
    display_name = "CDNsun"
    server_header = "CDNsun"
    client_header_block_target = 664
    pad_header_name = "X-Edge-Location"
    # Paper §IV-C: CDNsun keeps the upstream connection alive when the
    # client aborts.
    maintains_backend_on_client_abort = True

    def default_limits(self) -> HeaderLimits:
        return HeaderLimits(max_single_header_line_bytes=16 * 1024)

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        leading = spec.specs[0]
        if isinstance(leading, ByteRangeSpec) and leading.first == 0:
            return ForwardDecision.delete()
        return ForwardDecision.lazy(request.range_header)

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [("X-Forwarded-For", "198.51.100.7")]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-Cache", "MISS"),
        ]
