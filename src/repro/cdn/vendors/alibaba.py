"""Alibaba Cloud profile.

Paper findings reproduced here:

* Table I — *Deletion* for ``bytes=-suffix``, conditional (*) on the
  customer's *Range* origin option being **disable** (the default the
  paper measured with; setting it to *enable* makes Alibaba lazy and not
  vulnerable).
* Table IV — exploited case ``bytes=-1``, 1 MB factor ≈ 1056 (heavier
  response headers than most, hence the shallow slope).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import (
    EncodingPolicy,
    SpecShape,
    VendorConfig,
    VendorContext,
    VendorProfile,
    classify_spec,
)
from repro.http.message import HttpRequest
from repro.http.ranges import RangeSpecifier


class AlibabaProfile(VendorProfile):
    name = "alibaba"
    display_name = "Alibaba Cloud"
    server_header = "Tengine"
    client_header_block_target = 992
    pad_header_name = "EagleId"
    # arXiv 2409.00712 Table 3: Alibaba Cloud CDN rewrites Accept-
    # Encoding (gzip preferred) and decompresses at the edge.
    encoding_policy = EncodingPolicy.REWRITE
    edge_accept_encoding = ("gzip", "br")
    edge_decompresses = True

    @classmethod
    def default_config(cls) -> VendorConfig:
        # The Range origin option defaults to "disable": back-to-origin
        # requests carry no Range header — the vulnerable setting.
        return VendorConfig(origin_range_option=False)

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        range_option_disabled = ctx.config.origin_range_option is not True
        shape = classify_spec(spec)
        if shape is SpecShape.SINGLE_SUFFIX and range_option_disabled:
            return ForwardDecision.delete()
        if shape is SpecShape.MULTI:
            # Multi-range requests are not forwarded verbatim (Alibaba is
            # absent from Table II): fetch the whole representation.
            return ForwardDecision.delete()
        return ForwardDecision.lazy(request.range_header)

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Via", "1.1 cache.l2et2-1[0,0]"),
            ("Ali-Swift-Log-Host", "example.com.w.alikunlun.com"),
        ]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("Timing-Allow-Origin", "*"),
            ("Via", "cache13.l2et2-1[0,206-0,M], cache3.cn1339[0,200-0,M]"),
            ("X-Cache", "MISS TCP_MISS dirn:-2:-2"),
            ("X-Swift-CacheTime", "86400"),
        ]
