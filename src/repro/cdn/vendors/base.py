"""Vendor profile framework.

A :class:`VendorProfile` encodes everything that distinguishes one CDN
from another in this study:

* the **forwarding decision** per Range format (Tables I and II);
* special **fetch flows** (Azure's dual connection with the 8 MB cut,
  KeyCDN's second-request deletion, StackPath's re-forward after a 206) —
  implemented by overriding :meth:`VendorProfile.fetch`;
* the **multi-range reply behavior** (Table III);
* the **request-header limits** (§V-C);
* the **response header weight**, which sets the per-vendor slope of the
  SBR amplification curves (Fig 6a).

Response-header weight is modeled with a realistic named-header set plus
a vendor-typical request-id header padded so the canonical client
response reaches ``client_header_block_target`` bytes.  The targets are
calibrated from Table IV's 1 MB amplification factors (the paper's own
explanation: "due to the great difference resulted from different
response headers inserted by CDNs, the slope ... is quite different").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Tuple

from enum import Enum

from repro.cdn.limits import HeaderLimits
from repro.cdn.multirange import MultiRangeReplyBehavior
from repro.cdn.policy import ForwardDecision, ForwardPolicy
from repro.cdn.window import ContentWindow
from repro.http.encoding import IDENTITY, accepted_codings
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.multipart import DEFAULT_BOUNDARY
from repro.http.ranges import ByteRangeSpec, RangeSpecifier, SuffixByteRangeSpec, parse_content_range
from repro.http.status import StatusCode


class SpecShape(Enum):
    """Structural shape of a parsed Range header, the unit vendor policy
    tables switch on."""

    SINGLE_CLOSED = "single-closed"  # bytes=first-last
    SINGLE_OPEN = "single-open"      # bytes=first-
    SINGLE_SUFFIX = "single-suffix"  # bytes=-suffix
    MULTI = "multi"                  # two or more specs


def classify_spec(spec: RangeSpecifier) -> SpecShape:
    """Classify a parsed Range header into a :class:`SpecShape`."""
    if spec.is_multi:
        return SpecShape.MULTI
    only = spec.specs[0]
    if isinstance(only, SuffixByteRangeSpec):
        return SpecShape.SINGLE_SUFFIX
    assert isinstance(only, ByteRangeSpec)
    return SpecShape.SINGLE_OPEN if only.is_open_ended else SpecShape.SINGLE_CLOSED

class EncodingPolicy(Enum):
    """How a CDN treats the client's ``Accept-Encoding`` on the way to
    the origin (the CCFC behavior table, arXiv 2409.00712 §IV)."""

    #: Relay the client's header unchanged (safe).
    FORWARD = "forward"
    #: Drop the header; the origin negotiates nothing (safe).
    STRIP = "strip"
    #: Replace it with the edge's own preferred codings regardless of
    #: what the client accepts — the CCFC-vulnerable behavior.
    REWRITE = "rewrite"
    #: Intersect the client's codings with the edge's; request
    #: ``identity`` when the intersection is empty (the mitigation).
    NORMALIZE = "normalize"


#: Per-coding compressed-size ratios the simulation models.  The CCFC
#: paper's amplification stems from highly compressible payloads
#: (zeros, repetitive text): brotli reaches ~2000:1 and gzip ~1000:1 on
#: such content, which is what these ratios encode.
DEFAULT_COMPRESSION_RATIOS: Mapping[str, float] = {
    "br": 0.0005,
    "gzip": 0.001,
    IDENTITY: 1.0,
}


#: ``exchange`` callback a node hands to a profile's fetch flow: send one
#: upstream request over a fresh connection, optionally capping how many
#: response payload bytes are delivered (connection cut), and get the
#: response back.
ExchangeFn = Callable[..., HttpResponse]


@dataclass(frozen=True)
class VendorConfig:
    """Customer-visible configuration knobs that gate vulnerability.

    * ``origin_range_option`` — the Alibaba/Tencent/Huawei "Range" origin
      option.  ``None`` means "vendor default".  For Alibaba and Tencent
      the *disable* setting (False) is the vulnerable one; for Huawei the
      *enable* setting (True) is (paper §V-A item 1).
    * ``cacheable`` — whether the target path is configured cacheable
      (Cloudflare's SBR condition).
    * ``bypass_cache`` — whether the target path is configured *Bypass*
      (Cloudflare's OBR condition).
    * ``cache_enabled`` — whether the node's edge cache stores responses
      at all (independent of the forwarding decision).
    """

    origin_range_option: Optional[bool] = None
    cacheable: bool = True
    bypass_cache: bool = False
    cache_enabled: bool = True


@dataclass
class VendorContext:
    """Per-request context a profile's decision logic may consult."""

    config: VendorConfig
    #: Size of the target representation, when the node can know it
    #: (cached metadata in real CDNs; supplied by the deployment here).
    #: ``None`` means unknown.
    resource_size_hint: Optional[int] = None


@dataclass
class FetchResult:
    """Outcome of a profile's upstream fetch flow.

    Exactly one of ``window`` / ``passthrough`` is set:

    * ``window`` — the node now holds content and should answer the
      client's ranges from it;
    * ``passthrough`` — the upstream response should be relayed (laziness
      on a 206, or an upstream error).
    """

    window: Optional[ContentWindow] = None
    passthrough: Optional[HttpResponse] = None
    policy: Optional[ForwardPolicy] = None
    upstream_status: int = 0
    cacheable_full: bool = False
    #: Upstream response headers, for relaying validators and Content-Type
    #: when the node answers from a window.
    source_headers: Optional["Headers"] = None

    def __post_init__(self) -> None:
        if (self.window is None) == (self.passthrough is None):
            raise ValueError("FetchResult needs exactly one of window/passthrough")


class VendorProfile:
    """Base class with the default single-connection fetch flow.

    Subclasses set the class attributes and override
    :meth:`forward_decision` (and, for stateful flows, :meth:`fetch`).
    """

    #: Registry key, e.g. ``"akamai"``.
    name: str = "base"
    #: Human-readable name as the paper prints it.
    display_name: str = "Base"
    #: How the node replies to multi-range requests (Table III).
    reply_behavior: MultiRangeReplyBehavior = MultiRangeReplyBehavior.COALESCE
    #: Azure-style cap on parts in a multipart reply (None = unlimited).
    reply_max_parts: Optional[int] = None
    #: Boundary used for multipart replies (its length contributes to the
    #: OBR per-part overhead).
    multipart_boundary: str = DEFAULT_BOUNDARY
    #: Target size of the client-response header block (status line
    #: through blank line), calibrated against Table IV; 0 disables
    #: padding.
    client_header_block_target: int = 0
    #: Name of the vendor-typical id header used for padding.
    pad_header_name: str = "X-Request-Id"
    #: ``Server`` header value the vendor stamps on client responses.
    server_header: str = "cdn"
    #: Whether the vendor keeps its back-to-origin connection alive when
    #: the client connection is abnormally aborted.  Most CDNs break the
    #: back-end fetch (their defense against the Triukose et al.
    #: connection-drop attack); the paper names CDNsun and CDN77 as
    #: maintaining it (§IV-C).
    maintains_backend_on_client_abort: bool = False
    #: Whether the vendor's *fetch flow* (not its per-shape decision
    #: table) pulls more than the requested range — StackPath's
    #: re-forward-without-Range after a 206.  Consulted by the behavior
    #: matrix, which otherwise only sees ``forward_decision``.
    amplifies_via_fetch_flow: bool = False
    #: How the vendor treats the client's ``Accept-Encoding`` upstream
    #: (the CCFC behavior table).
    encoding_policy: EncodingPolicy = EncodingPolicy.FORWARD
    #: Codings the edge itself negotiates with the origin, in preference
    #: order; only consulted under REWRITE/NORMALIZE.
    edge_accept_encoding: Tuple[str, ...] = ()
    #: Whether the edge decompresses an origin body whose coding the
    #: client did not accept — the conversion the CCFC attack amplifies.
    edge_decompresses: bool = False
    #: Compressed-size model per coding (fraction of the identity size).
    compression_ratios: Mapping[str, float] = DEFAULT_COMPRESSION_RATIOS

    def __init__(self, limits: Optional[HeaderLimits] = None) -> None:
        self.limits = limits if limits is not None else self.default_limits()

    # -- hooks subclasses override ------------------------------------------------

    @classmethod
    def default_config(cls) -> VendorConfig:
        """The vendor's default customer configuration (the paper ran all
        experiments with defaults)."""
        return VendorConfig()

    def effective_config(self) -> VendorConfig:
        """The configuration a deployment applies when none is given.

        For registry profiles this is just :meth:`default_config`;
        wrapper profiles (``repro.defense.mitigations``) override it to
        return the *wrapped* vendor's default, so a mitigated profile
        survives round-trips through deployment and grid construction
        with the inner vendor's configuration intact.
        """
        return type(self).default_config()

    def default_limits(self) -> HeaderLimits:
        return HeaderLimits()

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        """Pick the forwarding policy for this request (Tables I/II)."""
        return ForwardDecision.lazy(request.range_header)

    def forward_headers(self) -> List[Tuple[str, str]]:
        """Headers the vendor adds to back-to-origin requests."""
        return [("Via", f"1.1 {self.name}")]

    def response_headers(self) -> List[Tuple[str, str]]:
        """Vendor-identifying headers added to client responses (before
        padding)."""
        return []

    # -- default fetch flow -------------------------------------------------------

    def fetch(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
        exchange: ExchangeFn,
    ) -> FetchResult:
        """One upstream exchange under :meth:`forward_decision`'s policy."""
        decision = self.forward_decision(request, spec, ctx)
        upstream_request = self.build_upstream_request(request, decision)
        response = exchange(upstream_request, note=f"forward:{decision.policy.value}")
        return self.interpret_upstream(decision, response, spec)

    def compressed_size(self, coding: str, size: int) -> int:
        """Modeled on-the-wire size of a ``size``-byte body under
        ``coding`` (unknown codings pass through uncompressed)."""
        ratio = self.compression_ratios.get(coding.lower(), 1.0)
        if size <= 0 or ratio >= 1.0:
            return size
        return max(1, math.ceil(size * ratio))

    def upstream_accept_encoding(self, client_value: Optional[str]) -> Optional[str]:
        """The ``Accept-Encoding`` value this vendor sends upstream for a
        client request carrying ``client_value`` (``None`` = header
        absent; returning ``None`` = send no header).

        The policy only engages when the client *sent* the header —
        requests without one (every SBR/OBR shape) pass through every
        vendor byte-identically.
        """
        if client_value is None:
            return None
        if self.encoding_policy is EncodingPolicy.STRIP:
            return None
        if self.encoding_policy is EncodingPolicy.REWRITE and self.edge_accept_encoding:
            return ", ".join(self.edge_accept_encoding)
        if self.encoding_policy is EncodingPolicy.NORMALIZE:
            shared = accepted_codings(client_value, self.edge_accept_encoding)
            return ", ".join(shared) if shared else IDENTITY
        return client_value

    def build_upstream_request(
        self, request: HttpRequest, decision: ForwardDecision
    ) -> HttpRequest:
        """Copy the client request and rewrite its Range header per the
        forwarding decision (and its Accept-Encoding per the vendor's
        encoding policy)."""
        upstream = request.copy()
        if decision.forwarded_range is None:
            upstream.headers.remove("Range")
        else:
            upstream.headers.set("Range", decision.forwarded_range)
        client_accept = request.headers.get("Accept-Encoding")
        if client_accept is not None:
            negotiated = self.upstream_accept_encoding(client_accept)
            if negotiated is None:
                upstream.headers.remove("Accept-Encoding")
            elif negotiated != client_accept:
                upstream.headers.set("Accept-Encoding", negotiated)
        for name, value in self.forward_headers():
            if name not in upstream.headers:
                upstream.headers.add(name, value)
        return upstream

    def interpret_upstream(
        self,
        decision: ForwardDecision,
        response: HttpResponse,
        spec: Optional[RangeSpecifier],
    ) -> FetchResult:
        """Turn the upstream response into a window or a passthrough."""
        if response.status >= 300:
            return FetchResult(
                passthrough=response,
                policy=decision.policy,
                upstream_status=response.status,
            )
        if response.status == StatusCode.OK:
            # The node holds the full representation — whether it asked
            # for it (Deletion) or the origin ignored the Range header.
            # RFC 2616 directs a range-aware proxy that receives a full
            # entity to answer only the requested range, so a window is
            # right even under Laziness; this is the OBR back-end path.
            if decision.policy is ForwardPolicy.LAZINESS and spec is None:
                return FetchResult(
                    passthrough=response,
                    policy=decision.policy,
                    upstream_status=200,
                    cacheable_full=True,
                )
            return FetchResult(
                window=ContentWindow.full(response.body),
                policy=decision.policy,
                upstream_status=200,
                cacheable_full=True,
                source_headers=response.headers,
            )
        if response.status == StatusCode.PARTIAL_CONTENT:
            content_type = response.content_type or ""
            if content_type.startswith("multipart/byteranges"):
                # A multipart we did not assemble: relay it verbatim.
                return FetchResult(
                    passthrough=response,
                    policy=decision.policy,
                    upstream_status=206,
                )
            if decision.policy is ForwardPolicy.LAZINESS:
                return FetchResult(
                    passthrough=response,
                    policy=decision.policy,
                    upstream_status=206,
                )
            content_range = response.headers.get("Content-Range")
            if content_range is None:
                return FetchResult(
                    passthrough=response,
                    policy=decision.policy,
                    upstream_status=206,
                )
            resolved, complete = parse_content_range(content_range)
            if resolved is None or complete is None:
                return FetchResult(
                    passthrough=response,
                    policy=decision.policy,
                    upstream_status=206,
                )
            return FetchResult(
                window=ContentWindow(
                    body=response.body, offset=resolved.start, complete_length=complete
                ),
                policy=decision.policy,
                upstream_status=206,
                source_headers=response.headers,
            )
        return FetchResult(
            passthrough=response, policy=decision.policy, upstream_status=response.status
        )

    # -- response shaping -----------------------------------------------------------

    def pad_response(self, response: HttpResponse) -> None:
        """Pad the response header block to the calibrated vendor weight."""
        target = self.client_header_block_target
        if target <= 0:
            return
        overhead = len(self.pad_header_name) + 4  # "Name: " + CRLF
        current = response.header_block_size()
        deficit = target - current - overhead
        if deficit > 0:
            pattern = "0123456789abcdef"
            value = (pattern * (deficit // len(pattern) + 1))[:deficit]
            response.headers.add(self.pad_header_name, value)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
