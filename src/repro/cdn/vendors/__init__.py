"""Vendor profile registry.

One profile class per CDN the paper examined, keyed by a short
registry name.  Profiles are stateful (KeyCDN remembers requests it has
seen), so :func:`create_profile` returns a *fresh instance* on every
call — deployments must not share profile objects.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.cdn.vendors.akamai import AkamaiProfile
from repro.cdn.vendors.alibaba import AlibabaProfile
from repro.cdn.vendors.azure import AzureProfile
from repro.cdn.vendors.base import FetchResult, VendorConfig, VendorContext, VendorProfile
from repro.cdn.vendors.cdn77 import Cdn77Profile
from repro.cdn.vendors.cdnsun import CdnsunProfile
from repro.cdn.vendors.cloudflare import CloudflareProfile
from repro.cdn.vendors.cloudfront import CloudFrontProfile
from repro.cdn.vendors.fastly import FastlyProfile
from repro.cdn.vendors.gcore import GcoreProfile
from repro.cdn.vendors.huawei import HuaweiProfile
from repro.cdn.vendors.keycdn import KeycdnProfile
from repro.cdn.vendors.stackpath import StackpathProfile
from repro.cdn.vendors.tencent import TencentProfile
from repro.errors import UnknownVendorError

_REGISTRY: Dict[str, Type[VendorProfile]] = {
    profile.name: profile
    for profile in (
        AkamaiProfile,
        AlibabaProfile,
        AzureProfile,
        Cdn77Profile,
        CdnsunProfile,
        CloudflareProfile,
        CloudFrontProfile,
        FastlyProfile,
        GcoreProfile,
        HuaweiProfile,
        KeycdnProfile,
        StackpathProfile,
        TencentProfile,
    )
}

#: The CDNs the paper found usable as the OBR attack's front-end
#: (Table II) and back-end (Table III).
OBR_FRONTENDS = ("cdn77", "cdnsun", "cloudflare", "stackpath")
OBR_BACKENDS = ("akamai", "azure", "stackpath")


def all_vendor_names() -> List[str]:
    """Registry names of all 13 modeled CDNs, sorted."""
    return sorted(_REGISTRY)


def profile_class(name: str) -> Type[VendorProfile]:
    """Look up a profile class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownVendorError(name) from None


def create_profile(name: str) -> VendorProfile:
    """Instantiate a fresh profile for ``name``."""
    return profile_class(name)()


__all__ = [
    "AkamaiProfile",
    "AlibabaProfile",
    "AzureProfile",
    "Cdn77Profile",
    "CdnsunProfile",
    "CloudFrontProfile",
    "CloudflareProfile",
    "FastlyProfile",
    "FetchResult",
    "GcoreProfile",
    "HuaweiProfile",
    "KeycdnProfile",
    "OBR_BACKENDS",
    "OBR_FRONTENDS",
    "StackpathProfile",
    "TencentProfile",
    "VendorConfig",
    "VendorContext",
    "VendorProfile",
    "all_vendor_names",
    "create_profile",
    "profile_class",
]
