"""Azure CDN profile.

Paper findings reproduced here (§V-A item 2, Tables I–III):

* For ``bytes=first-last`` Azure first applies *Deletion*.  If the
  resource turns out to be larger than 8 MB, Azure closes that first
  back-to-origin connection as soon as a little over 8 MB of payload has
  arrived ("considering network latency, actual response traffic in the
  first connection will be a little larger than 8MB").
* If additionally ``[first, last] ⊂ [8388608, 16777215]``, Azure opens a
  *second* back-to-origin connection with the *Expansion* range
  ``bytes=8388608-16777215``.  Result: for resources over 16 MB the two
  connections move ≈ 8 MB each, capping the SBR amplification (the Fig 6a
  plateau).
* Azure honors overlapping multi-range requests but limits the Range
  header to 64 ranges — the only CDN with a direct range-count limit,
  which pins ``max n = 64`` in every Azure-BCDN row of Table V.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.limits import HeaderLimits
from repro.cdn.multirange import MultiRangeReplyBehavior
from repro.cdn.policy import ForwardDecision, ForwardPolicy
from repro.cdn.vendors.base import (
    ExchangeFn,
    FetchResult,
    SpecShape,
    VendorContext,
    VendorProfile,
    classify_spec,
)
from repro.cdn.window import ContentWindow
from repro.http.message import HttpRequest
from repro.http.ranges import ByteRangeSpec, RangeSpecifier, parse_content_range
from repro.http.status import StatusCode

EIGHT_MB = 8 * 1024 * 1024
#: Last byte position of Azure's expansion window, bytes=8388608-16777215.
WINDOW_LAST = 16 * 1024 * 1024 - 1
#: Extra payload that slips through before the connection cut takes
#: effect ("a little larger than 8MB").
DEFAULT_ABORT_SLOP = 64 * 1024


class AzureProfile(VendorProfile):
    name = "azure"
    display_name = "Azure"
    reply_behavior = MultiRangeReplyBehavior.HONOR
    reply_max_parts = 64
    server_header = "ECAcc (nyb/1D2E)"
    client_header_block_target = 719
    pad_header_name = "X-Azure-Ref"

    def __init__(self, limits: Optional[HeaderLimits] = None, abort_slop: int = DEFAULT_ABORT_SLOP) -> None:
        super().__init__(limits)
        self.abort_slop = abort_slop

    def default_limits(self) -> HeaderLimits:
        return HeaderLimits(max_ranges=64)

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        return ForwardDecision.delete()

    def fetch(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
        exchange: ExchangeFn,
    ) -> FetchResult:
        if spec is None:
            return super().fetch(request, spec, ctx, exchange)

        first_result = self._deletion_with_cut(request, exchange)
        if first_result.passthrough is not None or first_result.window is None:
            return first_result

        complete = first_result.window.complete_length
        if complete > EIGHT_MB and self._range_in_second_window(spec):
            return self._expansion_fetch(request, exchange) or first_result
        return first_result

    # -- flow pieces ----------------------------------------------------------

    def _deletion_with_cut(self, request: HttpRequest, exchange: ExchangeFn) -> FetchResult:
        """Deletion forward; cut the connection a little past 8 MB."""
        upstream = self.build_upstream_request(request, ForwardDecision.delete())
        response = exchange(
            upstream,
            payload_cap=EIGHT_MB + self.abort_slop,
            note="forward:deletion (cut past 8MB)",
        )
        if response.status != StatusCode.OK:
            return FetchResult(
                passthrough=response,
                policy=ForwardPolicy.DELETION,
                upstream_status=response.status,
            )
        declared = response.declared_content_length()
        complete = declared if declared is not None else len(response.body)
        truncated = len(response.body) < complete
        return FetchResult(
            window=ContentWindow(body=response.body, offset=0, complete_length=complete),
            policy=ForwardPolicy.DELETION,
            upstream_status=200,
            cacheable_full=not truncated,
            source_headers=response.headers,
        )

    def _range_in_second_window(self, spec: RangeSpecifier) -> bool:
        if classify_spec(spec) is not SpecShape.SINGLE_CLOSED:
            return False
        only = spec.specs[0]
        assert isinstance(only, ByteRangeSpec) and only.last is not None
        return EIGHT_MB <= only.first and only.last <= WINDOW_LAST

    def _expansion_fetch(self, request: HttpRequest, exchange: ExchangeFn) -> Optional[FetchResult]:
        expansion_value = f"bytes={EIGHT_MB}-{WINDOW_LAST}"
        upstream = self.build_upstream_request(request, ForwardDecision.expand(expansion_value))
        response = exchange(upstream, note=f"forward:expansion ({expansion_value})")
        if response.status != StatusCode.PARTIAL_CONTENT:
            return None
        content_range = response.headers.get("Content-Range")
        if content_range is None:
            return None
        resolved, complete = parse_content_range(content_range)
        if resolved is None or complete is None:
            return None
        return FetchResult(
            window=ContentWindow(
                body=response.body, offset=resolved.start, complete_length=complete
            ),
            policy=ForwardPolicy.EXPANSION,
            upstream_status=206,
            source_headers=response.headers,
        )

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [("Via", "1.1 azureedge")]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-Cache", "TCP_MISS"),
        ]
