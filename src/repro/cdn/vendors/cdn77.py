"""CDN77 profile.

Paper findings reproduced here:

* Table I — *Deletion* for ``bytes=first-last`` when ``first < 1024``.
* Table II — forwards multi-range requests unchanged when the leading
  spec is not in the deletion zone; the paper's exploited OBR case
  through CDN77 leads with ``-1024`` (a suffix spec) for exactly this
  reason.
* §V-C — any single request header line is limited to 16 KB, which caps
  the OBR ``n`` at 5455 for the ``bytes=-1024,0-,...,0-`` shape.

Both the single-range and multi-range behaviors fall out of one rule:
CDN77 deletes the Range header when its *first* spec starts below byte
1024, and is lazy otherwise.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cdn.limits import HeaderLimits
from repro.cdn.policy import ForwardDecision
from repro.cdn.vendors.base import EncodingPolicy, VendorContext, VendorProfile
from repro.http.message import HttpRequest
from repro.http.ranges import ByteRangeSpec, RangeSpecifier

#: Requests whose first range starts below this offset trigger Deletion.
DELETION_ZONE = 1024


class Cdn77Profile(VendorProfile):
    name = "cdn77"
    display_name = "CDN77"
    server_header = "CDN77-Turbo"
    client_header_block_target = 650
    pad_header_name = "X-77-NZT"
    # arXiv 2409.00712 Table 3: CDN77 rewrites Accept-Encoding to
    # br/gzip and converts (decompresses) at the edge.
    encoding_policy = EncodingPolicy.REWRITE
    edge_accept_encoding = ("br", "gzip")
    edge_decompresses = True
    # Paper §IV-C: CDN77 keeps the upstream connection alive when the
    # client aborts, which also lets OBR attackers drop early for free.
    maintains_backend_on_client_abort = True

    def default_limits(self) -> HeaderLimits:
        return HeaderLimits(max_single_header_line_bytes=16 * 1024)

    def forward_decision(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        ctx: VendorContext,
    ) -> ForwardDecision:
        if spec is None:
            return ForwardDecision.lazy(request.range_header)
        leading = spec.specs[0]
        if isinstance(leading, ByteRangeSpec) and leading.first < DELETION_ZONE:
            return ForwardDecision.delete()
        return ForwardDecision.lazy(request.range_header)

    def forward_headers(self) -> List[Tuple[str, str]]:
        return [("X-Forwarded-For", "198.51.100.7")]

    def response_headers(self) -> List[Tuple[str, str]]:
        return [
            ("Connection", "keep-alive"),
            ("X-77-Cache", "MISS"),
            ("X-77-POP", "frankfurtDE"),
        ]
