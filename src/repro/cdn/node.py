"""The CDN edge-node request pipeline.

A :class:`CdnNode` sits between a downstream client (the attacker, or
another CDN) and an upstream handler (the origin, or another CDN) and:

1. enforces the vendor's request-header limits;
2. answers from its edge cache when it can;
3. otherwise runs the vendor's fetch flow (forwarding policy + any
   special multi-connection behavior), recording every upstream exchange
   on the traffic ledger;
4. builds the client response — relaying a laziness passthrough, or
   serving the requested range(s) out of the fetched content window,
   honoring/coalescing/rejecting multi-range requests per the vendor's
   reply behavior;
5. stamps the vendor's response headers (whose byte weight drives the
   per-vendor amplification slopes).
"""

from __future__ import annotations

import logging
from typing import Callable, List, Optional, Tuple, Union

from repro.cdn.cache import CdnCache
from repro.cdn.multirange import apply_reply_behavior
from repro.cdn.vendors.base import VendorConfig, VendorContext, VendorProfile
from repro.cdn.window import ContentWindow
from repro.errors import RangeNotSatisfiableError, RequestRejectedError
from repro.faults.plan import current_faults
from repro.faults.retry import RetryPolicy, retry_policy_for
from repro.handler import HttpHandler
from repro.http.body import Body, SyntheticBody
from repro.http.encoding import IDENTITY, accepts_encoding
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.multipart import MultipartByteranges, MultipartPart
from repro.http.ranges import (
    RangeSpecifier,
    ResolvedRange,
    format_content_range,
    format_unsatisfied_content_range,
    try_parse_range_header,
)
from repro.http.status import StatusCode
from repro.netsim.connection import ExchangeRecord
from repro.netsim.tap import CDN_ORIGIN, TrafficLedger
from repro.obs.metrics import current_metrics
from repro.obs.tracer import NullSpan, Span, current_tracer

_FIXED_DATE = "Fri, 05 Jun 2020 08:00:00 GMT"

logger = logging.getLogger(__name__)


def convert_encoded_response(
    profile: VendorProfile,
    response: HttpResponse,
    size_hint: Optional[int],
    client_accept: Optional[str],
) -> HttpResponse:
    """Edge-side compression format conversion (arXiv 2409.00712 §III).

    When the vendor decompresses at the edge and the client cannot
    accept the coding the origin chose, the edge inflates the body back
    to the identity representation before replying: ``Content-Encoding``
    is dropped and ``Content-Length`` grows to the decompressed size
    (taken from the deployment's size hint — without one the edge cannot
    know the inflated size and relays the response untouched).  Returns
    ``response`` itself when no conversion applies.

    This is the module-level single source of truth shared by the live
    pipeline and the closed-form CCFC mirror in
    :mod:`repro.core.ccfc` — bound == simulation holds by construction.
    """
    if not profile.edge_decompresses:
        return response
    if int(response.status) != int(StatusCode.OK):
        return response
    encoding = response.headers.get("Content-Encoding")
    if encoding is None or encoding.lower() == IDENTITY:
        return response
    if client_accept is None or accepts_encoding(client_accept, encoding):
        return response
    if size_hint is None:
        return response
    converted = response.copy()
    converted.headers.remove("Content-Encoding")
    converted.headers.set("Content-Length", str(size_hint))
    converted.body = SyntheticBody(size_hint)
    return converted


def finalize_client_response(profile: VendorProfile, response: HttpResponse) -> HttpResponse:
    """Stamp vendor identity headers and pad to the calibrated weight.

    Module-level so the CCFC mirror applies byte-identical header
    weighting without instantiating a node.
    """
    headers = response.headers
    headers.set("Server", profile.server_header)
    if "Date" not in headers:
        headers.add("Date", _FIXED_DATE)
    if "Accept-Ranges" not in headers:
        headers.add("Accept-Ranges", "bytes")
    for name, value in profile.response_headers():
        if name not in headers:
            headers.add(name, value)
    profile.pad_response(response)
    return response


class CdnNode(HttpHandler):
    """One simulated CDN edge node."""

    def __init__(
        self,
        profile: VendorProfile,
        upstream: HttpHandler,
        ledger: Optional[TrafficLedger] = None,
        upstream_segment: str = CDN_ORIGIN,
        config: Optional[VendorConfig] = None,
        cache: Optional[CdnCache] = None,
        size_hint_fn: Optional[Callable[[str], Optional[int]]] = None,
        node_label: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.profile = profile
        self.retry_policy = retry_policy
        self.upstream = upstream
        self.ledger = ledger if ledger is not None else TrafficLedger()
        self.upstream_segment = upstream_segment
        self.config = config if config is not None else profile.effective_config()
        cache_enabled = self.config.cache_enabled and not self.config.bypass_cache
        self.cache = cache if cache is not None else CdnCache(enabled=cache_enabled)
        self.size_hint_fn = size_hint_fn
        self.node_label = node_label if node_label is not None else profile.name

    # -- pipeline -----------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        with current_tracer().span("cdn.handle") as hop:
            if hop.recording:
                hop.set(
                    vendor=self.profile.name,
                    node=self.node_label,
                    target=request.target,
                    range=request.headers.get("Range") or "",
                )
            return self._handle_traced(request, hop)

    def _handle_traced(self, request: HttpRequest, hop: Union[Span, NullSpan]) -> HttpResponse:
        tracer = current_tracer()
        registry = current_metrics()
        try:
            self.profile.limits.check(request)
        except RequestRejectedError as rejected:
            logger.debug(
                "%s rejected %s %s: %s", self.node_label, request.method,
                request.target, rejected,
            )
            if hop.recording:
                hop.set(outcome="rejected", reason=str(rejected))
            return self._rejection(rejected)

        spec = try_parse_range_header(request.headers.get("Range"))

        with tracer.span("cdn.cache.lookup") as lookup:
            cached = self.cache.get(request)
            if lookup.recording:
                lookup.set(
                    vendor=self.profile.name,
                    hit=cached is not None,
                    enabled=self.cache.enabled,
                )
        if registry is not None and self.cache.enabled:
            registry.record_cache_lookup(self.profile.name, cached is not None)
        if cached is not None:
            logger.debug("%s cache hit for %s", self.node_label, request.target)
            if hop.recording:
                hop.set(cache="hit")
            window = ContentWindow.full(cached.body)
            response = self._serve(request, spec, window, cached.headers)
            # Shared caches report the entry's age (RFC 7234 §5.1); the
            # deterministic clock makes it a stable "0" or the simulated
            # elapsed seconds.
            response.headers.set("Age", str(int(self.cache.clock.now)))
            return response
        if hop.recording:
            hop.set(cache="miss" if self.cache.enabled else "bypass")

        ctx = VendorContext(config=self.config, resource_size_hint=self._size_hint(request))
        with tracer.span("cdn.fetch") as fetch_span:
            result = self.profile.fetch(request, spec, ctx, self._exchange)
            policy = result.policy.value if result.policy is not None else None
            if fetch_span.recording:
                fetch_span.set(
                    vendor=self.profile.name,
                    policy=policy,
                    passthrough=result.passthrough is not None,
                )
        if hop.recording and policy is not None:
            hop.set(policy=policy)
        if registry is not None and policy is not None:
            registry.record_rewrite(self.profile.name, policy)

        if result.passthrough is not None:
            passthrough = convert_encoded_response(
                self.profile,
                result.passthrough,
                self._size_hint(request),
                request.headers.get("Accept-Encoding"),
            )
            if result.cacheable_full:
                self.cache.put(request, passthrough)
            if passthrough.status >= 300:
                return self._relay_error(passthrough)
            return self._finalize(passthrough.copy())

        window = result.window
        source_headers = result.source_headers if result.source_headers else Headers()
        if result.cacheable_full and window.is_full:
            self.cache.put(request, self._cache_entry(window, source_headers))
        return self._serve(request, spec, window, source_headers)

    # -- upstream exchange ----------------------------------------------------

    def _active_retry_policy(self) -> Optional[RetryPolicy]:
        """The policy governing back-to-origin retries, if any.

        An explicitly configured policy always applies.  Otherwise the
        vendor's stock policy engages only while a fault injector is
        installed — the clean happy-path simulation (and its pinned
        traffic totals) must never see a retry.
        """
        if self.retry_policy is not None:
            return self.retry_policy
        if current_faults() is not None:
            return retry_policy_for(self.profile.name)
        return None

    def _exchange(
        self,
        upstream_request: HttpRequest,
        payload_cap: Optional[int] = None,
        note: str = "",
    ) -> HttpResponse:
        """Send one request upstream, re-fetching per the retry policy.

        Each attempt opens a fresh connection and re-ships the whole
        fetch window — the re-amplification the faulted experiments
        measure.  Backoff delays are accounted (never slept), with
        deterministic jitter drawn from the fault injector.
        """
        policy = self._active_retry_policy()
        if policy is None:
            response, _ = self._exchange_once(upstream_request, payload_cap, note)
            return response

        injector = current_faults()
        registry = current_metrics()
        attempt = 0
        while True:
            attempt += 1
            if attempt == 1:
                attempt_note = note
            else:
                retry_tag = f"retry{attempt - 1}"
                attempt_note = f"{note}+{retry_tag}" if note else retry_tag
            response, record = self._exchange_once(
                upstream_request, payload_cap, attempt_note
            )
            # An intentional payload cap (Azure's 8 MB cut) truncates by
            # design; only an *unexpected* truncation is a failure.
            failed_transfer = payload_cap is None and record.truncated
            needs_retry = policy.should_retry(int(record.status), truncated=failed_transfer)
            if not needs_retry or attempt >= policy.max_attempts:
                if registry is not None:
                    registry.record_fetch_attempts(
                        self.profile.name, attempt, ok=not needs_retry
                    )
                if injector is not None:
                    injector.note_fetch(self.profile.name, attempt, ok=not needs_retry)
                return response
            unit = injector.jitter_unit() if injector is not None else 0.5
            delay = policy.backoff_s(attempt, unit=unit)
            if injector is not None:
                injector.note_retry(self.profile.name, delay)
            if registry is not None:
                registry.record_retry(self.profile.name, delay)
            logger.debug(
                "%s retrying upstream fetch (attempt %d, backoff %.3fs)",
                self.node_label, attempt + 1, delay,
            )

    def _exchange_once(
        self,
        upstream_request: HttpRequest,
        payload_cap: Optional[int] = None,
        note: str = "",
    ) -> Tuple[HttpResponse, ExchangeRecord]:
        """One upstream attempt over a fresh connection.

        ``payload_cap`` models this node cutting the connection after
        roughly that many response *payload* bytes have arrived (Azure's
        8 MB cut): the ledger records both the full size the upstream
        pushed and the capped delivery, and the returned response carries
        only the delivered body prefix.
        """
        logger.debug(
            "%s -> upstream %s %s (Range: %s)%s",
            self.node_label,
            upstream_request.method,
            upstream_request.target,
            upstream_request.headers.get("Range", "-"),
            f" [{note}]" if note else "",
        )
        with current_tracer().span("cdn.upstream") as span:
            if span.recording:
                span.set(
                    vendor=self.profile.name,
                    segment=self.upstream_segment,
                    range=upstream_request.headers.get("Range") or "",
                )
                if note:
                    span.set(note=note)
                if payload_cap is not None:
                    span.set(payload_cap=payload_cap)
            connection = self.ledger.open_connection(
                self.upstream_segment, client_label=self.node_label,
                server_label="upstream",
            )
            response = self.upstream.handle(upstream_request)
            deliver_cap = None
            if payload_cap is not None:
                deliver_cap = response.header_block_size() + max(0, payload_cap)
            record = connection.exchange(
                upstream_request, response, deliver_cap=deliver_cap, note=note
            )
            if span.recording:
                span.set(status=record.status, truncated=record.truncated)
        if record.truncated:
            received = response.copy()
            received.body = response.body.slice(
                0, max(0, record.response_bytes_delivered - response.header_block_size())
            )
            return received, record
        return response, record

    def _size_hint(self, request: HttpRequest) -> Optional[int]:
        if self.size_hint_fn is None:
            return None
        return self.size_hint_fn(request.path)

    # -- response construction ---------------------------------------------------

    def _serve(
        self,
        request: HttpRequest,
        spec: Optional[RangeSpecifier],
        window: ContentWindow,
        source_headers: Headers,
    ) -> HttpResponse:
        content_type = source_headers.get("Content-Type", "application/octet-stream")

        if spec is None:
            if not window.is_full:
                return self._gateway_error("partial window but no Range request")
            return self._finalize(
                self._base_response(
                    StatusCode.OK,
                    content_type,
                    body=window.body,
                    source_headers=source_headers,
                )
            )

        try:
            resolved = spec.resolve(window.complete_length)
            parts = apply_reply_behavior(
                self.profile.reply_behavior,
                resolved,
                window.complete_length,
                max_parts=self.profile.reply_max_parts,
            )
        except RangeNotSatisfiableError:
            return self._not_satisfiable(window.complete_length)

        if any(not window.covers(part) for part in parts):
            return self._gateway_error("fetched window does not cover the requested range")

        if len(parts) == 1:
            part = parts[0]
            response = self._base_response(
                StatusCode.PARTIAL_CONTENT,
                content_type,
                body=window.slice_range(part),
                source_headers=source_headers,
            )
            response.headers.add(
                "Content-Range",
                format_content_range(part.start, part.end, window.complete_length),
            )
            return self._finalize(response)

        return self._finalize(
            self._multipart_response(window, parts, content_type, source_headers)
        )

    def _multipart_response(
        self,
        window: ContentWindow,
        parts: List[ResolvedRange],
        content_type: str,
        source_headers: Headers,
    ) -> HttpResponse:
        with current_tracer().span("cdn.multipart") as span:
            multipart = MultipartByteranges(
                [
                    MultipartPart(
                        content_type=content_type,
                        content_range=part,
                        complete_length=window.complete_length,
                        payload=window.slice_range(part),
                    )
                    for part in parts
                ],
                boundary=self.profile.multipart_boundary,
            )
            body = multipart.to_body()
            response = self._base_response(
                StatusCode.PARTIAL_CONTENT,
                multipart.content_type_header,
                body=body,
                source_headers=source_headers,
            )
            if span.recording:
                span.set(
                    vendor=self.profile.name,
                    parts=len(parts),
                    body_bytes=len(body),
                )
            return response

    def _base_response(
        self,
        status: StatusCode,
        content_type: str,
        body: Body,
        source_headers: Headers,
    ) -> HttpResponse:
        headers = Headers([("Date", _FIXED_DATE)])
        for relayed in ("Last-Modified", "ETag", "Cache-Control"):
            value = source_headers.get(relayed)
            if value is not None:
                headers.add(relayed, value)
        headers.add("Content-Type", content_type)
        headers.add("Content-Length", str(len(body)))
        return HttpResponse(status, headers=headers, body=body)

    def _cache_entry(self, window: ContentWindow, source_headers: Headers) -> HttpResponse:
        return self._base_response(
            StatusCode.OK,
            source_headers.get("Content-Type", "application/octet-stream"),
            body=window.body,
            source_headers=source_headers,
        )

    def _finalize(self, response: HttpResponse) -> HttpResponse:
        """Stamp vendor identity headers and pad to the calibrated weight."""
        return finalize_client_response(self.profile, response)

    def _relay_error(self, upstream_response: HttpResponse) -> HttpResponse:
        response = upstream_response.copy()
        response.headers.set("Server", self.profile.server_header)
        return response

    def _not_satisfiable(self, complete_length: int) -> HttpResponse:
        headers = Headers(
            [
                ("Date", _FIXED_DATE),
                ("Server", self.profile.server_header),
                ("Content-Range", format_unsatisfied_content_range(complete_length)),
                ("Content-Length", "0"),
            ]
        )
        return HttpResponse(StatusCode.RANGE_NOT_SATISFIABLE, headers=headers)

    def _rejection(self, rejected: RequestRejectedError) -> HttpResponse:
        body = f"{rejected}\n"
        headers = Headers(
            [
                ("Date", _FIXED_DATE),
                ("Server", self.profile.server_header),
                ("Content-Type", "text/plain"),
                ("Content-Length", str(len(body))),
            ]
        )
        return HttpResponse(rejected.status_code, headers=headers, body=body)

    def _gateway_error(self, message: str) -> HttpResponse:
        body = f"{message}\n"
        headers = Headers(
            [
                ("Date", _FIXED_DATE),
                ("Server", self.profile.server_header),
                ("Content-Type", "text/plain"),
                ("Content-Length", str(len(body))),
            ]
        )
        return HttpResponse(StatusCode.BAD_GATEWAY, headers=headers, body=body)

    def __repr__(self) -> str:
        return f"CdnNode({self.profile.name}, upstream_segment={self.upstream_segment!r})"
