"""Multi-node edge clusters (paper §II-A, §V-D).

A CDN is not one cache: it is clusters of ingress nodes with independent
caches, scattered globally.  The paper leans on this twice — the "CDN as
a natural distributed botnet" observation (§V-E), and the fourth
experiment's methodology of sending requests "to completely different
ingress nodes" (§V-D) so no single node's cache or rate limiter sees the
whole stream.

:class:`EdgeCluster` models a cluster of same-vendor edge nodes sharing
one upstream and one traffic ledger but each with its own cache (and its
own profile instance — KeyCDN's request memory is per-edge too).  Node
selection is pluggable:

* ``"rotate"`` — round-robin, the attacker's spread-the-load choice;
* ``"url-hash"`` — consistent per-URL affinity, how anycast + URL
  hashing tends to behave for benign clients.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.cdn.node import CdnNode
from repro.cdn.vendors import create_profile
from repro.cdn.vendors.base import VendorConfig
from repro.errors import ConfigurationError
from repro.handler import HttpHandler
from repro.http.message import HttpRequest, HttpResponse
from repro.netsim.tap import CDN_ORIGIN, TrafficLedger

#: Node-selection policies.
ROTATE = "rotate"
URL_HASH = "url-hash"


class EdgeCluster(HttpHandler):
    """A cluster of same-vendor edge nodes behind one logical hostname."""

    def __init__(
        self,
        vendor: str,
        upstream: HttpHandler,
        node_count: int = 4,
        ledger: Optional[TrafficLedger] = None,
        upstream_segment: str = CDN_ORIGIN,
        selection: str = ROTATE,
        config: Optional[VendorConfig] = None,
        size_hint_fn: Optional[Callable[[str], Optional[int]]] = None,
    ) -> None:
        if node_count < 1:
            raise ConfigurationError(f"node_count must be >= 1, got {node_count}")
        if selection not in (ROTATE, URL_HASH):
            raise ConfigurationError(f"unknown selection policy {selection!r}")
        self.vendor = vendor
        self.selection = selection
        self.ledger = ledger if ledger is not None else TrafficLedger()
        self._cursor = 0
        self.nodes: List[CdnNode] = []
        for index in range(node_count):
            profile = create_profile(vendor)
            node_config = config if config is not None else profile.effective_config()
            self.nodes.append(
                CdnNode(
                    profile=profile,
                    upstream=upstream,
                    ledger=self.ledger,
                    upstream_segment=upstream_segment,
                    config=node_config,
                    size_hint_fn=size_hint_fn,
                    node_label=f"{vendor}-edge{index}",
                )
            )
        self._served: Dict[int, int] = {index: 0 for index in range(node_count)}

    # -- selection ------------------------------------------------------------

    def node_for(self, request: HttpRequest) -> CdnNode:
        """Pick the edge node that will serve ``request``."""
        if self.selection == URL_HASH:
            # Stable per-URL affinity; deterministic (no Python hash
            # randomization) so experiments are reproducible.
            key = f"{request.host or ''}|{request.target}"
            index = sum(key.encode("utf-8")) % len(self.nodes)
        else:
            index = self._cursor % len(self.nodes)
            self._cursor += 1
        self._served[index] += 1
        return self.nodes[index]

    def handle(self, request: HttpRequest) -> HttpResponse:
        return self.node_for(request).handle(request)

    # -- inspection --------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def served_per_node(self) -> List[int]:
        """Requests served by each node, in node order."""
        return [self._served[index] for index in range(len(self.nodes))]

    def cache_entries_per_node(self) -> List[int]:
        return [len(node.cache) for node in self.nodes]

    def origin_fetches(self) -> int:
        """Total back-to-origin exchanges across the cluster."""
        segments = {node.upstream_segment for node in self.nodes}
        return sum(
            self.ledger.segment_stats(segment).exchange_count for segment in segments
        )

    def __repr__(self) -> str:
        return (
            f"EdgeCluster({self.vendor}, {len(self.nodes)} nodes, "
            f"selection={self.selection!r})"
        )
