"""The content window a CDN node holds after fetching from upstream.

Under *Deletion* the node holds the full representation; under
*Expansion* it holds a byte window of it.  Either way the node answers
the client's ranges out of this window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.http.body import Body
from repro.http.ranges import ResolvedRange


@dataclass(frozen=True)
class ContentWindow:
    """Bytes ``[offset, offset + len(body))`` of a representation whose
    total size is ``complete_length``."""

    body: Body
    offset: int
    complete_length: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"window offset must be >= 0, got {self.offset}")
        if self.offset + len(self.body) > self.complete_length:
            raise ValueError(
                f"window [{self.offset}, {self.offset + len(self.body)}) exceeds "
                f"representation length {self.complete_length}"
            )

    @classmethod
    def full(cls, body: Body) -> "ContentWindow":
        """A window covering the whole representation."""
        return cls(body=body, offset=0, complete_length=len(body))

    @property
    def is_full(self) -> bool:
        return self.offset == 0 and len(self.body) == self.complete_length

    @property
    def end(self) -> int:
        """One past the last byte position this window holds."""
        return self.offset + len(self.body)

    def covers(self, r: ResolvedRange) -> bool:
        """True when the window contains every byte of ``r``."""
        return self.offset <= r.start and r.end < self.end

    def slice_range(self, r: ResolvedRange) -> Body:
        """Extract ``r`` from the window (which must cover it)."""
        if not self.covers(r):
            raise ValueError(f"window [{self.offset}, {self.end}) does not cover {r}")
        return self.body.slice(r.start - self.offset, r.end + 1 - self.offset)
