"""The CDN edge cache.

Only complete 200 responses are cached (CDNs generally do not cache
partial or multipart responses), keyed on ``(host, full target)`` — the
full target *including the query string*, which is exactly why appending
a random query string busts the cache and forces a back-to-origin fetch
(paper §II-A).  The SBR attack depends on forcing that miss on every
request; :mod:`repro.core.cachebusting` generates the query strings.

Freshness follows shared-cache ``Cache-Control`` semantics:

* ``no-store`` / ``private`` — never stored.  §II-A notes that "most
  CDNs provide configurable options to customize caching policy, which
  makes a malicious customer able to disable resource caching" — a
  malicious origin emitting ``no-store`` gets the same every-request
  back-to-origin behavior without any query-string busting.
* ``s-maxage`` (shared caches) takes precedence over ``max-age``; either
  sets the entry's TTL against the cache's simulated clock.
* ``no-cache`` is treated as immediately stale (we do not model
  revalidation requests).
* absent directives fall back to ``default_ttl`` (``None`` = cache
  forever, matching the deterministic experiments).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.http.message import HttpRequest, HttpResponse
from repro.http.status import StatusCode
from repro.netsim.clock import SimClock


@dataclass
class CacheStats:
    """Hit/miss counters the experiments assert on."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    expirations: int = 0
    uncacheable: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


def parse_cache_control(value: Optional[str]) -> Dict[str, Optional[str]]:
    """Parse a Cache-Control header into a directive map.

    Directive names are lowercased; valueless directives map to ``None``.
    Malformed pieces are skipped (caches must be liberal here).
    """
    directives: Dict[str, Optional[str]] = {}
    if not value:
        return directives
    for piece in value.split(","):
        piece = piece.strip()
        if not piece:
            continue
        name, _, argument = piece.partition("=")
        name = name.strip().lower()
        if not name:
            continue
        directives[name] = argument.strip().strip('"') if argument else None
    return directives


def shared_cache_ttl(directives: Dict[str, Optional[str]]) -> Optional[float]:
    """Effective TTL for a shared cache, or ``None`` when unspecified.

    ``s-maxage`` wins over ``max-age``; ``no-cache`` is zero TTL.
    Unparsable ages are treated as unspecified.
    """
    if "no-cache" in directives:
        return 0.0
    for name in ("s-maxage", "max-age"):
        raw = directives.get(name)
        if raw is not None:
            try:
                return max(0.0, float(raw))
            except ValueError:
                continue
    return None


class CdnCache:
    """A bounded FIFO cache of complete responses with TTL freshness."""

    def __init__(
        self,
        enabled: bool = True,
        max_entries: int = 4096,
        clock: Optional[SimClock] = None,
        default_ttl: Optional[float] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.enabled = enabled
        self.max_entries = max_entries
        self.clock = clock if clock is not None else SimClock()
        self.default_ttl = default_ttl
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[str, str], Tuple[HttpResponse, Optional[float]]]" = (
            OrderedDict()
        )

    @staticmethod
    def key_for(request: HttpRequest) -> Tuple[str, str]:
        """Cache key: host plus the full request target (query included)."""
        return (request.host or "", request.target)

    def get(self, request: HttpRequest) -> Optional[HttpResponse]:
        """Return a copy of the cached, still-fresh response for
        ``request``."""
        if not self.enabled or request.method != "GET":
            return None
        key = self.key_for(request)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        response, expires_at = entry
        if expires_at is not None and self.clock.now >= expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return response.copy()

    def put(self, request: HttpRequest, response: HttpResponse) -> bool:
        """Cache ``response`` if it is a cacheable full 200; returns
        whether it was stored."""
        if not self.enabled or request.method != "GET" or response.status != StatusCode.OK:
            return False
        directives = parse_cache_control(response.headers.get("Cache-Control"))
        if "no-store" in directives or "private" in directives:
            self.stats.uncacheable += 1
            return False
        ttl = shared_cache_ttl(directives)
        if ttl is None:
            ttl = self.default_ttl
        if ttl is not None and ttl <= 0:
            self.stats.uncacheable += 1
            return False
        expires_at = None if ttl is None else self.clock.now + ttl
        key = self.key_for(request)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = (response.copy(), expires_at)
        self.stats.stores += 1
        return True

    def purge(self) -> int:
        """Drop every entry; returns how many were dropped."""
        count = len(self._entries)
        self._entries.clear()
        return count

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, request: object) -> bool:
        if not isinstance(request, HttpRequest):
            return False
        return self.key_for(request) in self._entries
