"""Request-header size limits.

The OBR attack's amplification is ``n`` (the number of overlapping
ranges), and ``n`` is bounded only by how large a ``Range`` header the
CDNs along the path will accept.  The paper measured (§V-C):

* Akamai — total request headers limited to 32 KB;
* StackPath — total limited to ~81 KB;
* CDN77 / CDNsun — any single header line limited to 16 KB;
* Cloudflare — ``RL + 2·HHL + RHL <= 32411`` bytes, where RL is the
  request line, HHL the Host header line, and RHL the Range header line;
* Azure — at most 64 ranges in a Range header.

:class:`HeaderLimits` models all five shapes; exceeding a byte limit is
answered with HTTP 431 and exceeding the range-count limit with 416,
which is how the max-n search detects the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import RequestRejectedError
from repro.http.message import HttpRequest
from repro.http.ranges import try_parse_range_header
from repro.http.status import StatusCode


def cloudflare_rule(budget: int = 32411) -> Callable[[HttpRequest], Optional[str]]:
    """Cloudflare's measured constraint on Range-bearing requests:
    request line + 2x the Host header line + the Range header line must
    fit in ``budget`` bytes."""

    def check(request: HttpRequest) -> Optional[str]:
        range_line = request.headers.field_line_size("Range")
        if not range_line:
            return None
        request_line = request.request_line_size()
        host_line = request.headers.field_line_size("Host")
        used = request_line + 2 * host_line + range_line
        if used > budget:
            return f"RL + 2*HHL + RHL = {used} exceeds {budget}"
        return None

    return check


@dataclass(frozen=True)
class HeaderLimits:
    """Request-size constraints a CDN enforces at ingress.

    * ``max_total_header_bytes`` — cap on the whole request header block
      (request line through the blank line), Akamai/StackPath style.
    * ``max_single_header_line_bytes`` — cap on any one serialized header
      line (``Name: value\\r\\n``), CDN77/CDNsun style.
    * ``max_ranges`` — cap on the number of byte-range specs in the Range
      header, Azure style.
    * ``custom`` — an arbitrary predicate returning an error message, for
      Cloudflare's composite rule.
    """

    max_total_header_bytes: Optional[int] = None
    max_single_header_line_bytes: Optional[int] = None
    max_ranges: Optional[int] = None
    custom: Optional[Callable[[HttpRequest], Optional[str]]] = None

    def check(self, request: HttpRequest) -> None:
        """Raise :class:`RequestRejectedError` if ``request`` violates any
        limit; return silently otherwise."""
        if self.max_total_header_bytes is not None:
            total = request.header_block_size()
            if total > self.max_total_header_bytes:
                raise RequestRejectedError(
                    f"request header block is {total} bytes, "
                    f"limit is {self.max_total_header_bytes}",
                    status_code=int(StatusCode.REQUEST_HEADER_FIELDS_TOO_LARGE),
                )
        if self.max_single_header_line_bytes is not None:
            for name in request.headers.names():
                line = request.headers.field_line_size(name)
                if line > self.max_single_header_line_bytes:
                    raise RequestRejectedError(
                        f"header {name} line is {line} bytes, "
                        f"limit is {self.max_single_header_line_bytes}",
                        status_code=int(StatusCode.REQUEST_HEADER_FIELDS_TOO_LARGE),
                    )
        if self.max_ranges is not None:
            spec = try_parse_range_header(request.headers.get("Range"))
            if spec is not None and len(spec) > self.max_ranges:
                raise RequestRejectedError(
                    f"Range header has {len(spec)} ranges, limit is {self.max_ranges}",
                    status_code=int(StatusCode.RANGE_NOT_SATISFIABLE),
                )
        if self.custom is not None:
            message = self.custom(request)
            if message:
                raise RequestRejectedError(
                    message,
                    status_code=int(StatusCode.REQUEST_HEADER_FIELDS_TOO_LARGE),
                )
